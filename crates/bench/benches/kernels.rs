//! E7 bench: the EREW PRAM kernels — phased tournament vs model reduction vs
//! the pool-backed threaded kernels.
//!
//! Runs on the in-repo harness (`pdmsf_bench::harness`), so it works offline:
//! `cargo bench -p pdmsf-bench --bench kernels`.

use pdmsf_bench::harness::BenchGroup;
use pdmsf_pram::kernels::{threaded_entrywise_min, threaded_min_index};
use pdmsf_pram::{erew_tournament_min, par_entrywise_min, par_min_index, CostMeter};

fn main() {
    let mut group = BenchGroup::new("e7_kernels");
    for size in [1usize << 10, 1 << 14, 1 << 18] {
        let xs: Vec<u64> = (0..size as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        group.bench(&format!("model_min/{size}"), || {
            par_min_index(&xs, &mut CostMeter::new())
        });
        group.bench(&format!("phased_tournament/{size}"), || {
            erew_tournament_min(&xs, &mut CostMeter::new(), None)
        });
        group.bench(&format!("pooled_min/{size}"), || threaded_min_index(&xs));
        let src: Vec<u64> = xs.iter().rev().copied().collect();
        group.bench(&format!("entrywise_min/{size}"), || {
            let mut dst = xs.clone();
            par_entrywise_min(&mut dst, &src, &mut CostMeter::new());
            dst
        });
        group.bench(&format!("pooled_entrywise_min/{size}"), || {
            let mut dst = xs.clone();
            threaded_entrywise_min(&mut dst, &src);
            dst
        });
    }
}
