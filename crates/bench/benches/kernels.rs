//! E7 bench: the EREW PRAM kernels — phased tournament vs model reduction vs
//! rayon-backed reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdmsf_pram::kernels::{rayon_entrywise_min, rayon_min_index};
use pdmsf_pram::{erew_tournament_min, par_entrywise_min, par_min_index, CostMeter};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_kernels");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [1usize << 10, 1 << 14, 1 << 18] {
        let xs: Vec<u64> = (0..size as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        group.bench_with_input(BenchmarkId::new("model_min", size), &xs, |b, xs| {
            b.iter(|| par_min_index(xs, &mut CostMeter::new()))
        });
        group.bench_with_input(BenchmarkId::new("phased_tournament", size), &xs, |b, xs| {
            b.iter(|| erew_tournament_min(xs, &mut CostMeter::new(), None))
        });
        group.bench_with_input(BenchmarkId::new("rayon_min", size), &xs, |b, xs| {
            b.iter(|| rayon_min_index(xs))
        });
        let src: Vec<u64> = xs.iter().rev().copied().collect();
        group.bench_with_input(BenchmarkId::new("entrywise_min", size), &xs, |b, xs| {
            b.iter(|| {
                let mut dst = xs.clone();
                par_entrywise_min(&mut dst, &src, &mut CostMeter::new());
                dst
            })
        });
        group.bench_with_input(
            BenchmarkId::new("rayon_entrywise_min", size),
            &xs,
            |b, xs| {
                b.iter(|| {
                    let mut dst = xs.clone();
                    rayon_entrywise_min(&mut dst, &src);
                    dst
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
