//! The observability **overhead guard**: the instrumented E1 batched-engine
//! path (per-phase histograms + outcome counters live,
//! [`Engine::enable_metrics`]) against the plain engine on the same bursty
//! stream — asserting the instrumentation costs **less than 2% median
//! overhead**, the budget documented in `pdmsf-obs`'s crate docs.
//!
//! Methodology: container wall clock swings far more than 2% between runs,
//! so pair medians of two separate bench loops would be dominated by drift.
//! Instead the two variants run as **interleaved pairs** — (plain,
//! instrumented) back to back per iteration, so both see the same machine
//! conditions — and the guard is the **median of the per-pair ratios**,
//! robust to scheduling spikes in either direction. Pair count is fixed
//! (not `PDMSF_BENCH_SAMPLES`) because a single-pair CI smoke ratio would
//! be pure noise; the whole bench stays in the low seconds.
//!
//! `cargo bench -p pdmsf-bench --bench obs_overhead`.

use pdmsf_bench::{bursty_batch_stream, drive_engine_batched};
use pdmsf_engine::Engine;
use std::time::Duration;

/// Maximum tolerated instrumented/plain median-of-ratios (the documented
/// <2% observability budget).
const MAX_RATIO: f64 = 1.02;

/// Interleaved pairs measured (odd, so the median is a single pair).
const PAIRS: usize = 11;

fn main() {
    // Tracing is compiled into every engine phase but must be OFF here:
    // the <2% budget is the cost of the *disabled* two-tier check (one
    // relaxed load + branch per span site) riding along with the metrics.
    assert!(
        !pdmsf_obs::trace::enabled(),
        "obs_overhead measures the tracing-off path; nothing may enable \
         the global tracer in this process"
    );

    let n = 2_048;
    let stream = bursty_batch_stream(n, n / 2, 16, 256, 5);

    let run_plain = || {
        let mut engine = Engine::new(n);
        drive_engine_batched(&mut engine, &stream)
    };
    let run_instrumented = || {
        let mut engine = Engine::new(n);
        engine.enable_metrics();
        drive_engine_batched(&mut engine, &stream)
    };

    // Warm both paths (first-touch allocation, registry resolution).
    std::hint::black_box(run_plain());
    std::hint::black_box(run_instrumented());

    println!("\n== obs_overhead ({PAIRS} interleaved pairs) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "pair", "plain", "metrics", "ratio"
    );
    let mut ratios: Vec<f64> = Vec::with_capacity(PAIRS);
    for pair in 0..PAIRS {
        let (plain, _) = std::hint::black_box(run_plain());
        let (instrumented, _) = std::hint::black_box(run_instrumented());
        let ratio = instrumented.as_secs_f64() / plain.as_secs_f64();
        println!(
            "{:>6} {:>12.2}ms {:>12.2}ms {:>8.4}",
            pair,
            plain.as_secs_f64() * 1e3,
            instrumented.as_secs_f64() * 1e3,
            ratio
        );
        ratios.push(ratio);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let median = ratios[ratios.len() / 2];
    println!(
        "median ratio {median:.4} (budget < {MAX_RATIO:.2}); spread {:.4}..{:.4}",
        ratios[0],
        ratios[ratios.len() - 1]
    );
    assert!(
        median < MAX_RATIO,
        "instrumented E1 batched path regressed {:.2}% in the median (budget < {:.0}%): \
         the observability layer must stay near-free on the hot path",
        (median - 1.0) * 100.0,
        (MAX_RATIO - 1.0) * 100.0
    );

    // The measured pairs must all have run with tracing still disabled.
    assert!(!pdmsf_obs::trace::enabled());

    // Keep the timing honest: both paths must have actually run batches.
    let _ = Duration::ZERO;
}
