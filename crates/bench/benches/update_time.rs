//! E1 bench: per-update cost of the sequential structure vs the baselines on
//! mixed insert/delete streams over random sparse graphs.
//!
//! Runs on the in-repo harness (`pdmsf_bench::harness`), so it works offline:
//! `cargo bench -p pdmsf-bench --bench update_time`.

use pdmsf_baselines::{NaiveDynamicMsf, RecomputeMsf};
use pdmsf_bench::harness::BenchGroup;
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::SeqDynamicMsf;

fn main() {
    let mut group = BenchGroup::new("e1_update_time");
    for n in [1usize << 8, 1 << 10] {
        let stream = mixed_stream(n, 2 * n, 200, 11);
        group.bench(&format!("kpr-seq/{n}"), || {
            drive(&mut SeqDynamicMsf::new(n), &stream)
        });
        group.bench(&format!("naive/{n}"), || {
            drive(&mut NaiveDynamicMsf::new(n), &stream)
        });
        if n <= 1 << 10 {
            group.bench(&format!("recompute/{n}"), || {
                drive(&mut RecomputeMsf::new(n), &stream)
            });
        }
    }
}
