//! E1 bench: per-update cost of the sequential structure vs the baselines on
//! mixed insert/delete streams over random sparse graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdmsf_baselines::{NaiveDynamicMsf, RecomputeMsf};
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::SeqDynamicMsf;

fn bench_update_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_update_time");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [1usize << 8, 1 << 10] {
        let stream = mixed_stream(n, 2 * n, 200, 11);
        group.bench_with_input(BenchmarkId::new("kpr-seq", n), &stream, |b, s| {
            b.iter(|| drive(&mut SeqDynamicMsf::new(n), s))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &stream, |b, s| {
            b.iter(|| drive(&mut NaiveDynamicMsf::new(n), s))
        });
        if n <= 1 << 10 {
            group.bench_with_input(BenchmarkId::new("recompute", n), &stream, |b, s| {
                b.iter(|| drive(&mut RecomputeMsf::new(n), s))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_update_time);
criterion_main!(benches);
