//! E5 bench: realistic workloads — grid failure/repair and sliding-window
//! streams — for the paper structure and the naive baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdmsf_baselines::NaiveDynamicMsf;
use pdmsf_bench::{drive, grid_stream};
use pdmsf_core::SeqDynamicMsf;
use pdmsf_graph::{GraphSpec, StreamKind, UpdateStream, UpdateStreamSpec};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_workloads");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    let grid = grid_stream(32, 32, 500, 3);
    group.bench_function(BenchmarkId::new("grid", "kpr-seq"), |b| {
        b.iter(|| drive(&mut SeqDynamicMsf::new(grid.num_vertices), &grid))
    });
    group.bench_function(BenchmarkId::new("grid", "naive"), |b| {
        b.iter(|| drive(&mut NaiveDynamicMsf::new(grid.num_vertices), &grid))
    });

    let window = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse {
            n: 1024,
            m: 1024,
            seed: 7,
        },
        ops: 2_000,
        kind: StreamKind::SlidingWindow { window: 2048 },
        seed: 8,
    });
    group.bench_function(BenchmarkId::new("sliding_window", "kpr-seq"), |b| {
        b.iter(|| drive(&mut SeqDynamicMsf::new(window.num_vertices), &window))
    });
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
