//! E5 bench: realistic workloads — grid failure/repair and sliding-window
//! streams — for the paper structure and the naive baseline.
//!
//! Runs on the in-repo harness (`pdmsf_bench::harness`), so it works offline:
//! `cargo bench -p pdmsf-bench --bench workloads`.

use pdmsf_baselines::NaiveDynamicMsf;
use pdmsf_bench::harness::BenchGroup;
use pdmsf_bench::{drive, grid_stream};
use pdmsf_core::SeqDynamicMsf;
use pdmsf_graph::{GraphSpec, StreamKind, UpdateStream, UpdateStreamSpec};

fn main() {
    let mut group = BenchGroup::new("e5_workloads");

    let grid = grid_stream(32, 32, 500, 3);
    group.bench("grid/kpr-seq", || {
        drive(&mut SeqDynamicMsf::new(grid.num_vertices), &grid)
    });
    group.bench("grid/naive", || {
        drive(&mut NaiveDynamicMsf::new(grid.num_vertices), &grid)
    });

    let window = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse {
            n: 1024,
            m: 1024,
            seed: 7,
        },
        ops: 2_000,
        kind: StreamKind::SlidingWindow { window: 2048 },
        seed: 8,
    });
    group.bench("sliding_window/kpr-seq", || {
        drive(&mut SeqDynamicMsf::new(window.num_vertices), &window)
    });
}
