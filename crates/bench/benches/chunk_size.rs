//! E8 bench: chunk-parameter ablation around the paper's K = sqrt(n log n).
//!
//! Runs on the in-repo harness (`pdmsf_bench::harness`), so it works offline:
//! `cargo bench -p pdmsf-bench --bench chunk_size`.

use pdmsf_bench::harness::BenchGroup;
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::seq::default_sequential_k;
use pdmsf_core::SeqDynamicMsf;

fn main() {
    let mut group = BenchGroup::new("e8_chunk_size");
    let n = 1usize << 11;
    let k_star = default_sequential_k(n);
    let stream = mixed_stream(n, 2 * n, 300, 41);
    for factor in [1usize, 2, 4, 8, 16] {
        // K* / 4, K* / 2, K*, 2 K*, 4 K* (factor is scaled by 4 below).
        let k = (k_star * factor / 4).max(2);
        group.bench(&format!("k/{k}"), || {
            drive(&mut SeqDynamicMsf::with_chunk_parameter(n, k), &stream)
        });
    }
}
