//! E8 bench: chunk-parameter ablation around the paper's K = sqrt(n log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::seq::default_sequential_k;
use pdmsf_core::SeqDynamicMsf;

fn bench_chunk_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_chunk_size");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let n = 1usize << 11;
    let k_star = default_sequential_k(n);
    let stream = mixed_stream(n, 2 * n, 300, 41);
    for factor in [1usize, 2, 4, 8, 16] {
        // K* / 4, K* / 2, K*, 2 K*, 4 K* (factor is scaled by 4 below).
        let k = (k_star * factor / 4).max(2);
        group.bench_with_input(BenchmarkId::new("k", k), &stream, |b, s| {
            b.iter(|| drive(&mut SeqDynamicMsf::with_chunk_parameter(n, k), s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunk_size);
criterion_main!(benches);
