//! Batch-engine bench: the batched path (plan + cancellation + query
//! snapshot fan-out) against the one-op-at-a-time engine path on identical
//! bursty and tenant-clustered batch streams — the harness twin of
//! experiment E1.
//!
//! Runs on the in-repo harness (`pdmsf_bench::harness`), so it works offline:
//! `cargo bench -p pdmsf-bench --bench batch_engine`.

use pdmsf_bench::harness::BenchGroup;
use pdmsf_bench::{
    bursty_batch_stream, clustered_batch_stream, drive_engine_batched, drive_engine_one_by_one,
};
use pdmsf_engine::Engine;

fn main() {
    let mut group = BenchGroup::new("batch_engine");
    let n = 2_048;

    let bursty = bursty_batch_stream(n, n / 2, 16, 256, 5);
    group.bench("bursty/batched", || {
        let mut engine = Engine::new(n);
        drive_engine_batched(&mut engine, &bursty)
    });
    group.bench("bursty/one-by-one", || {
        let mut engine = Engine::new(n);
        drive_engine_one_by_one(&mut engine, &bursty)
    });

    let clustered = clustered_batch_stream(n, n / 2, 16, 256, 6);
    group.bench("clustered/batched", || {
        let mut engine = Engine::new(n);
        drive_engine_batched(&mut engine, &clustered)
    });
    group.bench("clustered/one-by-one", || {
        let mut engine = Engine::new(n);
        drive_engine_one_by_one(&mut engine, &clustered)
    });
}
