//! E6 bench: density sweep at fixed n — sparsified structure vs a direct
//! naive structure, showing the update cost's (in)dependence on m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdmsf_baselines::NaiveDynamicMsf;
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::{SeqDynamicMsf, SparsifiedMsf};

fn bench_sparsification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_sparsification");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let n = 256usize;
    for density in [2usize, 8, 32] {
        let stream = mixed_stream(n, density * n, 200, 31);
        group.bench_with_input(
            BenchmarkId::new("sparsified-seq", density),
            &stream,
            |b, s| {
                b.iter(|| {
                    drive(
                        &mut SparsifiedMsf::new_with_capacity(n, 2 * density * n, SeqDynamicMsf::new),
                        s,
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("naive", density), &stream, |b, s| {
            b.iter(|| drive(&mut NaiveDynamicMsf::new(n), s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparsification);
criterion_main!(benches);
