//! E6 bench: density sweep at fixed n — sparsified structure vs a direct
//! naive structure, showing the update cost's (in)dependence on m.
//!
//! Runs on the in-repo harness (`pdmsf_bench::harness`), so it works offline:
//! `cargo bench -p pdmsf-bench --bench sparsification`.

use pdmsf_baselines::NaiveDynamicMsf;
use pdmsf_bench::harness::BenchGroup;
use pdmsf_bench::{drive, mixed_stream};
use pdmsf_core::{SeqDynamicMsf, SparsifiedMsf};

fn main() {
    let mut group = BenchGroup::new("e6_sparsification");
    let n = 256usize;
    for density in [2usize, 8, 32] {
        let stream = mixed_stream(n, density * n, 200, 31);
        group.bench(&format!("sparsified-seq/{density}"), || {
            drive(
                &mut SparsifiedMsf::new_with_capacity(n, 2 * density * n, SeqDynamicMsf::new),
                &stream,
            )
        });
        group.bench(&format!("naive/{density}"), || {
            drive(&mut NaiveDynamicMsf::new(n), &stream)
        });
    }
}
