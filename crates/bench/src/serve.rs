//! Experiment E4: the **closed-loop serve-latency ramp**.
//!
//! The throughput experiments (E1/E2/E3) drive batches back-to-back and
//! report ops/sec — they answer "how fast can the stack drain work", not
//! "what load can it *sustain* while staying responsive". E4 answers the
//! second question the way a capacity test does (the classic
//! `initial_rps`/`increment_rps`/`max_rps` ramp of interactive-consistency
//! harnesses):
//!
//! 1. Offered load starts at [`RampConfig::initial_rps`] and climbs by
//!    [`RampConfig::increment_rps`] per round up to [`RampConfig::max_rps`].
//! 2. Each round drives a fresh [`ShardedService`] with a generated
//!    tenant-tagged stream ([`crate::tenant_stream`] — the same Bursty /
//!    Zipf-skewed generators as E2) under **virtual arrival pacing**: op
//!    `j` of the round arrives at `t0 + j/rate`, a batch dispatches when
//!    its last op has arrived, and the driver only sleeps when it is
//!    *ahead* of the arrival clock — when a batch takes longer than its
//!    arrival window the next batches start late and queueing delay shows
//!    up in the per-op latencies, exactly as in a real ingest queue.
//! 3. Per-op latency (completion − arrival) and per-batch service time are
//!    recorded into [`pdmsf_obs`] histograms — the round report *is* the
//!    histogram snapshot (exact count, p50/p95/p99 to one log2 bucket).
//! 4. The ramp stops early once the service is clearly saturated:
//!    failure rate (ops slower than [`RampConfig::timeout`]) above
//!    [`RampConfig::stop_failure_rate`], or median latency above
//!    [`RampConfig::stop_t_median`].
//!
//! The headline is the **knee point**: the highest offered rps whose round
//! still met the SLO (p95 ≤ [`RampConfig::slo`] and failure rate ≤
//! [`RampConfig::stop_failure_rate`]). `experiments -- e4` writes the full
//! per-round table plus the knee to `BENCH_serve_latency.json`.

use std::time::{Duration, Instant};

use pdmsf_obs as obs;
use pdmsf_shard::{ShardedService, TenantSpec};

use crate::{tenant_stream, RunMeta};

/// One serve workload: the tenant topology and stream shape a ramp runs
/// against. Scenarios are data, composed from the existing generators —
/// adding one is adding a literal.
#[derive(Clone, Debug)]
pub struct ServeScenario {
    /// Label stamped into records (`uniform`, `zipf_hot`, ...).
    pub name: &'static str,
    pub tenants: usize,
    pub tenant_vertices: usize,
    pub shards: usize,
    /// Ops per service batch (the arrival-window size).
    pub batch_size: usize,
    /// Tenant-pick skew for the stream generator (0 = uniform).
    pub zipf_permille: u32,
    pub seed: u64,
}

/// The ramp schedule and stop/SLO thresholds.
#[derive(Clone, Debug)]
pub struct RampConfig {
    pub initial_rps: u64,
    pub increment_rps: u64,
    pub max_rps: u64,
    /// Ops driven per round (larger = tighter quantiles, longer rounds).
    pub round_ops: usize,
    /// The p95 service-level objective a sustainable round must meet.
    pub slo: Duration,
    /// Per-op failure threshold: an op slower than this counts as failed.
    pub timeout: Duration,
    /// Stop the ramp (and disqualify the round) once this failure-rate is
    /// exceeded.
    pub stop_failure_rate: f64,
    /// Stop the ramp once median latency exceeds this (the service is far
    /// past its knee; later rounds only burn time).
    pub stop_t_median: Duration,
}

impl RampConfig {
    /// The default capacity ramp (full E4 run).
    pub fn standard() -> RampConfig {
        RampConfig {
            initial_rps: 20_000,
            increment_rps: 20_000,
            max_rps: 1_000_000,
            round_ops: 40_000,
            slo: Duration::from_millis(50),
            timeout: Duration::from_millis(250),
            stop_failure_rate: 0.05,
            stop_t_median: Duration::from_millis(100),
        }
    }

    /// A seconds-long smoke ramp for CI.
    pub fn quick() -> RampConfig {
        RampConfig {
            initial_rps: 5_000,
            increment_rps: 15_000,
            max_rps: 50_000,
            round_ops: 4_000,
            ..RampConfig::standard()
        }
    }
}

/// One measured round of a serve ramp.
#[derive(Clone, Debug)]
pub struct ServeRecord {
    pub scenario: &'static str,
    pub shards: usize,
    pub tenants: usize,
    /// Chunk parameter K of shard 0's structure.
    pub k: usize,
    pub round: usize,
    pub offered_rps: u64,
    pub ops: usize,
    /// Ops over the round's actual span (first arrival → last completion).
    pub achieved_rps: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub mean_ns: u64,
    /// p95 of per-batch service time (dispatch → completion).
    pub batch_p95_ns: u64,
    pub failures: u64,
    pub failure_rate: f64,
    /// Did this round meet the SLO (p95 ≤ slo, failure rate in bounds)?
    pub sustainable: bool,
}

/// Run the full ramp for one scenario. Returns the per-round records; the
/// knee is derived by [`knee_point`].
pub fn drive_serve_ramp(scenario: &ServeScenario, config: &RampConfig) -> Vec<ServeRecord> {
    // Global-registry handles so `metrics_dump` / the exposition test see
    // the bench layer too; per-round local histograms produce the report.
    let reg = obs::global();
    let op_family = reg.histogram(
        "pdmsf_bench_serve_op_ns",
        "E4 per-op serve latency (arrival to completion)",
    );
    let batch_family = reg.histogram(
        "pdmsf_bench_serve_batch_ns",
        "E4 per-batch service time (dispatch to completion)",
    );

    let mut records = Vec::new();
    let mut offered = config.initial_rps.max(1);
    let mut round = 0;
    loop {
        // A fresh service + stream per round: rounds are independent
        // samples of the same workload at different rates (replaying one
        // stream would make later rounds cut edges earlier rounds linked).
        let specs: Vec<TenantSpec> = (0..scenario.tenants)
            .map(|t| TenantSpec::new(pdmsf_graph::TenantId(t as u32), scenario.tenant_vertices))
            .collect();
        let mut service = ShardedService::new(scenario.shards, &specs);
        service.enable_metrics();
        let k = service.shard_engine(0).structure().chunk_parameter();

        let batches = (config.round_ops / scenario.batch_size).max(1);
        let stream = tenant_stream(
            scenario.tenants,
            scenario.tenant_vertices,
            batches,
            scenario.batch_size,
            scenario.zipf_permille,
            scenario.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        service.execute(&stream.base_ops()); // warm state, untimed

        let op_hist = obs::Histogram::new();
        let batch_hist = obs::Histogram::new();
        let mut failures = 0u64;
        let mut ops_done = 0usize;
        let timeout_ns = config.timeout.as_nanos() as u64;
        let ns_per_op = 1_000_000_000f64 / offered as f64;

        let t0 = Instant::now();
        let mut arrived = 0usize; // ops arrived before the current batch
        let mut last_completion_ns = 0u64;
        for batch in &stream.batches {
            let last_arrival_ns = ((arrived + batch.len()) as f64 * ns_per_op) as u64;
            // Closed loop: wait for the batch's arrival window to fill —
            // but never sleep when already behind (queueing builds up).
            let now_ns = t0.elapsed().as_nanos() as u64;
            if last_arrival_ns > now_ns {
                std::thread::sleep(Duration::from_nanos(last_arrival_ns - now_ns));
            }
            let dispatch = Instant::now();
            service.execute(batch);
            let batch_ns = dispatch.elapsed().as_nanos() as u64;
            batch_hist.record(batch_ns);
            batch_family.record(batch_ns);

            let completion_ns = t0.elapsed().as_nanos() as u64;
            last_completion_ns = completion_ns;
            for j in 0..batch.len() {
                let arrival_ns = ((arrived + j + 1) as f64 * ns_per_op) as u64;
                let latency = completion_ns.saturating_sub(arrival_ns);
                op_hist.record(latency);
                op_family.record(latency);
                if latency > timeout_ns {
                    failures += 1;
                }
            }
            arrived += batch.len();
            ops_done += batch.len();
        }

        let snap = op_hist.snapshot();
        let failure_rate = failures as f64 / ops_done.max(1) as f64;
        let p95 = snap.quantile(0.95);
        let record = ServeRecord {
            scenario: scenario.name,
            shards: scenario.shards,
            tenants: scenario.tenants,
            k,
            round,
            offered_rps: offered,
            ops: ops_done,
            achieved_rps: ops_done as f64 * 1e9 / last_completion_ns.max(1) as f64,
            p50_ns: snap.quantile(0.5),
            p95_ns: p95,
            p99_ns: snap.quantile(0.99),
            mean_ns: snap.mean() as u64,
            batch_p95_ns: batch_hist.snapshot().quantile(0.95),
            failures,
            failure_rate,
            sustainable: p95 <= config.slo.as_nanos() as u64
                && failure_rate <= config.stop_failure_rate,
        };
        let stop = record.failure_rate > config.stop_failure_rate
            || record.p50_ns > config.stop_t_median.as_nanos() as u64
            || offered >= config.max_rps;
        records.push(record);
        if stop {
            break;
        }
        offered = (offered + config.increment_rps).min(config.max_rps);
        round += 1;
    }
    records
}

/// The knee of a ramp: the highest offered rps among sustainable rounds
/// (`None` when even the first round missed the SLO).
pub fn knee_point(records: &[ServeRecord]) -> Option<u64> {
    records
        .iter()
        .filter(|r| r.sustainable)
        .map(|r| r.offered_rps)
        .max()
}

/// Serialize an E4 run as `BENCH_serve_latency.json` (hand-rolled JSON; see
/// [`crate::bench_records_to_json`]).
pub fn serve_records_to_json(
    meta: &RunMeta,
    config: &RampConfig,
    records: &[ServeRecord],
) -> String {
    let knee = knee_point(records);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"serve_latency\",\n");
    out.push_str("  \"unit\": \"rps\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"threads\": {}, \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.threads, meta.par_cutoff
    ));
    out.push_str(&format!(
        "  \"config\": {{\"initial_rps\": {}, \"increment_rps\": {}, \"max_rps\": {}, \"round_ops\": {}, \"slo_ms\": {}, \"timeout_ms\": {}, \"stop_failure_rate\": {}, \"stop_t_median_ms\": {}}},\n",
        config.initial_rps,
        config.increment_rps,
        config.max_rps,
        config.round_ops,
        config.slo.as_millis(),
        config.timeout.as_millis(),
        config.stop_failure_rate,
        config.stop_t_median.as_millis()
    ));
    out.push_str(&format!(
        "  \"headline\": {{\"knee_rps\": {}, \"slo_p95_ms\": {}}},\n",
        knee.map_or("null".to_string(), |k| k.to_string()),
        config.slo.as_millis()
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"shards\": {}, \"tenants\": {}, \"k\": {}, \"round\": {}, \"offered_rps\": {}, \"ops\": {}, \"achieved_rps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}, \"batch_p95_us\": {:.1}, \"failures\": {}, \"failure_rate\": {:.4}, \"sustainable\": {}}}{}\n",
            r.scenario,
            r.shards,
            r.tenants,
            r.k,
            r.round,
            r.offered_rps,
            r.ops,
            r.achieved_rps,
            r.p50_ns as f64 / 1e3,
            r.p95_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.mean_ns as f64 / 1e3,
            r.batch_p95_ns as f64 / 1e3,
            r.failures,
            r.failure_rate,
            r.sustainable,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ramp_produces_rounds_and_knee() {
        let scenario = ServeScenario {
            name: "test",
            tenants: 3,
            tenant_vertices: 64,
            shards: 2,
            batch_size: 32,
            zipf_permille: 0,
            seed: 7,
        };
        let config = RampConfig {
            initial_rps: 50_000,
            increment_rps: 50_000,
            max_rps: 100_000,
            round_ops: 128,
            slo: Duration::from_secs(5),
            timeout: Duration::from_secs(10),
            stop_failure_rate: 0.5,
            stop_t_median: Duration::from_secs(5),
        };
        let records = drive_serve_ramp(&scenario, &config);
        assert!(!records.is_empty() && records.len() <= 2);
        assert!(records.iter().all(|r| r.ops >= 128));
        // Generous SLO: every round sustains, knee = last offered rate.
        assert_eq!(
            knee_point(&records),
            Some(records.last().unwrap().offered_rps)
        );
        let json = serve_records_to_json(&RunMeta::collect(), &config, &records);
        assert!(json.contains("\"knee_rps\""));
        assert!(json.contains("\"scenario\": \"test\""));
    }
}
