//! Experiment E4: the **closed-loop serve-latency ramp**.
//!
//! The throughput experiments (E1/E2/E3) drive batches back-to-back and
//! report ops/sec — they answer "how fast can the stack drain work", not
//! "what load can it *sustain* while staying responsive". E4 answers the
//! second question the way a capacity test does (the classic
//! `initial_rps`/`increment_rps`/`max_rps` ramp of interactive-consistency
//! harnesses):
//!
//! 1. Offered load starts at [`RampConfig::initial_rps`] and climbs by
//!    [`RampConfig::increment_rps`] per round up to [`RampConfig::max_rps`].
//! 2. Each round drives a fresh [`ShardedService`] with a generated
//!    tenant-tagged stream ([`crate::tenant_stream`] — the same Bursty /
//!    Zipf-skewed generators as E2) under **virtual arrival pacing**: op
//!    `j` of the round arrives at `t0 + j/rate`, a batch dispatches when
//!    its last op has arrived, and the driver only sleeps when it is
//!    *ahead* of the arrival clock — when a batch takes longer than its
//!    arrival window the next batches start late and queueing delay shows
//!    up in the per-op latencies, exactly as in a real ingest queue.
//! 3. Per-op latency (completion − arrival) and per-batch service time are
//!    recorded into [`pdmsf_obs`] histograms — the round report *is* the
//!    histogram snapshot (exact count, p50/p95/p99 to one log2 bucket).
//! 4. The ramp stops early once the service is clearly saturated:
//!    failure rate (ops slower than [`RampConfig::timeout`]) above
//!    [`RampConfig::stop_failure_rate`], or median latency above
//!    [`RampConfig::stop_t_median`].
//!
//! The headline is the **knee point**: the highest offered rps whose round
//! still met the SLO (p95 ≤ [`RampConfig::slo`] and failure rate ≤
//! [`RampConfig::stop_failure_rate`]). `experiments -- e4` writes the full
//! per-round table plus the knee to `BENCH_serve_latency.json`.

use std::time::{Duration, Instant};

use pdmsf_obs as obs;
use pdmsf_shard::{ShardedService, TenantSpec};

use crate::{tenant_stream, RunMeta};

/// One serve workload: the tenant topology and stream shape a ramp runs
/// against. Scenarios are data, composed from the existing generators —
/// adding one is adding a literal.
#[derive(Clone, Debug)]
pub struct ServeScenario {
    /// Label stamped into records (`uniform`, `zipf_hot`, ...).
    pub name: &'static str,
    pub tenants: usize,
    pub tenant_vertices: usize,
    pub shards: usize,
    /// Ops per service batch (the arrival-window size).
    pub batch_size: usize,
    /// Tenant-pick skew for the stream generator (0 = uniform).
    pub zipf_permille: u32,
    /// Partitions per shard engine: `> 0` builds the service with
    /// component-partitioned engines ([`ShardedService::new_partitioned`],
    /// grouped intra-batch apply + adaptive rebalancing), `0` keeps the
    /// classic single-structure engines.
    pub partitions: usize,
    pub seed: u64,
}

/// The ramp schedule and stop/SLO thresholds.
#[derive(Clone, Debug)]
pub struct RampConfig {
    pub initial_rps: u64,
    pub increment_rps: u64,
    pub max_rps: u64,
    /// Ops driven per round (larger = tighter quantiles, longer rounds).
    pub round_ops: usize,
    /// The p95 service-level objective a sustainable round must meet.
    pub slo: Duration,
    /// Per-op failure threshold: an op slower than this counts as failed.
    pub timeout: Duration,
    /// Stop the ramp (and disqualify the round) once this failure-rate is
    /// exceeded.
    pub stop_failure_rate: f64,
    /// Stop the ramp once median latency exceeds this (the service is far
    /// past its knee; later rounds only burn time).
    pub stop_t_median: Duration,
    /// Trace 1 in `trace_sample` batches through the flight recorder
    /// (0 disables tracing entirely). Traced rounds stamp a per-phase
    /// breakdown of their slowest captured batch into the round record,
    /// and the slowest capture of the whole ramp is returned for export.
    pub trace_sample: u32,
}

impl RampConfig {
    /// The default capacity ramp (full E4 run).
    pub fn standard() -> RampConfig {
        RampConfig {
            initial_rps: 20_000,
            increment_rps: 20_000,
            max_rps: 1_000_000,
            round_ops: 40_000,
            slo: Duration::from_millis(50),
            timeout: Duration::from_millis(250),
            stop_failure_rate: 0.05,
            stop_t_median: Duration::from_millis(100),
            trace_sample: 8,
        }
    }

    /// A seconds-long smoke ramp for CI.
    pub fn quick() -> RampConfig {
        RampConfig {
            initial_rps: 5_000,
            increment_rps: 15_000,
            max_rps: 50_000,
            round_ops: 4_000,
            ..RampConfig::standard()
        }
    }
}

/// One measured round of a serve ramp.
#[derive(Clone, Debug)]
pub struct ServeRecord {
    pub scenario: &'static str,
    pub shards: usize,
    pub tenants: usize,
    /// Chunk parameter K of shard 0's structure.
    pub k: usize,
    /// Partitions per shard engine (0 = single-structure engines).
    pub partitions: usize,
    pub round: usize,
    pub offered_rps: u64,
    pub ops: usize,
    /// Ops over the round's actual span (first arrival → last completion).
    pub achieved_rps: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub mean_ns: u64,
    /// p95 of per-batch service time (dispatch → completion).
    pub batch_p95_ns: u64,
    pub failures: u64,
    pub failure_rate: f64,
    /// Did this round meet the SLO (p95 ≤ slo, failure rate in bounds)?
    pub sustainable: bool,
    /// Pool scheduler activity over the round
    /// ([`pdmsf_pram::pool::StatsSnapshot::delta`]).
    pub pool_jobs: u64,
    pub pool_shards: u64,
    pub pool_inline: u64,
    pub pool_chunks: u64,
    pub pool_steals: u64,
    /// Conflict-free update groups dispatched over the round's batches
    /// (zero on non-partitioned engines; see
    /// [`pdmsf_shard::ServiceSummary::update_groups`]).
    pub update_groups: u64,
    /// Updates that shared a group because their component classes
    /// collided on a partition bank.
    pub group_conflicts: u64,
    /// Component migrations over the round (cross-partition links plus
    /// rebalance moves).
    pub migrations: u64,
    /// Post-batch rebalance passes that moved a component.
    pub rebalances: u64,
    /// End-to-end latency of the round's slowest flight-recorder capture
    /// (0 when the round was untraced or nothing was captured).
    pub trace_total_ns: u64,
    /// Per-phase time of that slowest capture ([`obs::trace::phase_durations`];
    /// `wal` = append + fsync; note group/mirror spans nest inside apply).
    pub trace_plan_ns: u64,
    pub trace_group_ns: u64,
    pub trace_apply_ns: u64,
    pub trace_snapshot_ns: u64,
    pub trace_wal_ns: u64,
    /// Wall-clock per-phase time of the same capture
    /// ([`obs::trace::phase_wall_durations`]): each phase's interval
    /// *union* across workers, so overlapping concurrent spans count once
    /// and these never exceed `trace_total_ns`.
    pub trace_plan_wall_ns: u64,
    pub trace_group_wall_ns: u64,
    pub trace_apply_wall_ns: u64,
    pub trace_snapshot_wall_ns: u64,
    pub trace_wal_wall_ns: u64,
}

/// Phase attribution pulled out of one captured batch's span set, as
/// `(thread_time, wall_time)` in plan/group/apply/snapshot/wal order.
/// Thread-time ([`obs::trace::phase_durations`]) sums every worker's spans,
/// so a phase on `k` concurrent workers counts `k×`; wall-time
/// ([`obs::trace::phase_wall_durations`]) is the phase's interval union and
/// counts overlapped spans once.
fn phase_breakdown(cap: &obs::trace::CapturedTrace) -> ([u64; 5], [u64; 5]) {
    use obs::trace::Phase;
    let slot = |phase: Phase| match phase {
        Phase::Plan => Some(0),
        Phase::Group => Some(1),
        Phase::Apply => Some(2),
        Phase::Snapshot => Some(3),
        Phase::WalAppend | Phase::WalFsync => Some(4),
        _ => None,
    };
    let mut thread = [0u64; 5];
    for (phase, ns) in obs::trace::phase_durations(&cap.events) {
        if let Some(i) = slot(phase) {
            thread[i] += ns;
        }
    }
    let mut wall = [0u64; 5];
    for (phase, ns) in obs::trace::phase_wall_durations(&cap.events) {
        if let Some(i) = slot(phase) {
            wall[i] += ns;
        }
    }
    (thread, wall)
}

/// Run the full ramp for one scenario. Returns the per-round records (the
/// knee is derived by [`knee_point`]) plus the slowest flight-recorder
/// capture of the whole ramp (`None` when `config.trace_sample == 0` or
/// nothing was captured) — `experiments -- e4` exports it as Chrome
/// trace-event JSON next to the latency table.
pub fn drive_serve_ramp(
    scenario: &ServeScenario,
    config: &RampConfig,
) -> (Vec<ServeRecord>, Option<obs::trace::CapturedTrace>) {
    // Global-registry handles so `metrics_dump` / the exposition test see
    // the bench layer too; per-round local histograms produce the report.
    let reg = obs::global();
    let op_family = reg.histogram(
        "pdmsf_bench_serve_op_ns",
        "E4 per-op serve latency (arrival to completion)",
    );
    let batch_family = reg.histogram(
        "pdmsf_bench_serve_batch_ns",
        "E4 per-batch service time (dispatch to completion)",
    );

    if config.trace_sample > 0 {
        // Pin every traced batch: retention keeps the slowest, so each
        // round's drain yields its worst batches. Drain stale captures
        // from earlier ramps in this process first.
        obs::trace::set_capture_threshold_ns(1);
        let _ = obs::trace::take_captured();
    }

    let mut records = Vec::new();
    let mut slowest: Option<obs::trace::CapturedTrace> = None;
    let mut offered = config.initial_rps.max(1);
    let mut round = 0;
    loop {
        // A fresh service + stream per round: rounds are independent
        // samples of the same workload at different rates (replaying one
        // stream would make later rounds cut edges earlier rounds linked).
        let specs: Vec<TenantSpec> = (0..scenario.tenants)
            .map(|t| TenantSpec::new(pdmsf_graph::TenantId(t as u32), scenario.tenant_vertices))
            .collect();
        let mut service = if scenario.partitions > 0 {
            ShardedService::new_partitioned(scenario.shards, &specs, scenario.partitions)
        } else {
            ShardedService::new(scenario.shards, &specs)
        };
        service.enable_metrics();
        let engine0 = service.shard_engine(0);
        let k = match engine0.partitioned_structure() {
            Some(p) => p.chunk_parameter(),
            None => engine0.structure().chunk_parameter(),
        };

        let batches = (config.round_ops / scenario.batch_size).max(1);
        let stream = tenant_stream(
            scenario.tenants,
            scenario.tenant_vertices,
            batches,
            scenario.batch_size,
            scenario.zipf_permille,
            scenario.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        service.execute(&stream.base_ops()); // warm state, untimed
        if config.trace_sample > 0 {
            // After the warm batch so the oversized warmup is never traced
            // (it would otherwise dominate the flight recorder).
            service.enable_tracing();
            service.set_trace_sampling(config.trace_sample);
        }
        let pool_snap = pdmsf_pram::pool::snapshot();

        let op_hist = obs::Histogram::new();
        let batch_hist = obs::Histogram::new();
        let mut failures = 0u64;
        let mut ops_done = 0usize;
        // Grouped-apply attribution accumulated from each batch's summary
        // (the warm batch above is deliberately excluded).
        let mut update_groups = 0u64;
        let mut group_conflicts = 0u64;
        let mut migrations = 0u64;
        let mut rebalances = 0u64;
        let timeout_ns = config.timeout.as_nanos() as u64;
        let ns_per_op = 1_000_000_000f64 / offered as f64;

        let t0 = Instant::now();
        let mut arrived = 0usize; // ops arrived before the current batch
        let mut last_completion_ns = 0u64;
        for batch in &stream.batches {
            let last_arrival_ns = ((arrived + batch.len()) as f64 * ns_per_op) as u64;
            // Closed loop: wait for the batch's arrival window to fill —
            // but never sleep when already behind (queueing builds up).
            let now_ns = t0.elapsed().as_nanos() as u64;
            if last_arrival_ns > now_ns {
                std::thread::sleep(Duration::from_nanos(last_arrival_ns - now_ns));
            }
            let dispatch = Instant::now();
            let result = service.execute(batch);
            let batch_ns = dispatch.elapsed().as_nanos() as u64;
            batch_hist.record(batch_ns);
            batch_family.record(batch_ns);
            update_groups += result.summary.update_groups as u64;
            group_conflicts += result.summary.group_conflicts as u64;
            migrations += result.summary.migrations;
            rebalances += result.summary.rebalances;

            let completion_ns = t0.elapsed().as_nanos() as u64;
            last_completion_ns = completion_ns;
            for j in 0..batch.len() {
                let arrival_ns = ((arrived + j + 1) as f64 * ns_per_op) as u64;
                let latency = completion_ns.saturating_sub(arrival_ns);
                op_hist.record(latency);
                op_family.record(latency);
                if latency > timeout_ns {
                    failures += 1;
                }
            }
            arrived += batch.len();
            ops_done += batch.len();
        }

        let snap = op_hist.snapshot();
        let failure_rate = failures as f64 / ops_done.max(1) as f64;
        let p95 = snap.quantile(0.95);
        let pool_delta = pool_snap.delta();
        // Drain this round's captures: the slowest one yields the round's
        // phase breakdown, and the slowest across all rounds is exported.
        let mut round_trace = [0u64; 5];
        let mut round_wall = [0u64; 5];
        let mut round_total = 0u64;
        if config.trace_sample > 0 {
            for cap in obs::trace::take_captured() {
                if round_total == 0 {
                    round_total = cap.total_ns;
                    (round_trace, round_wall) = phase_breakdown(&cap);
                }
                if slowest.as_ref().is_none_or(|s| cap.total_ns > s.total_ns) {
                    slowest = Some(cap);
                }
            }
        }
        let record = ServeRecord {
            scenario: scenario.name,
            shards: scenario.shards,
            tenants: scenario.tenants,
            k,
            partitions: scenario.partitions,
            round,
            offered_rps: offered,
            ops: ops_done,
            achieved_rps: ops_done as f64 * 1e9 / last_completion_ns.max(1) as f64,
            p50_ns: snap.quantile(0.5),
            p95_ns: p95,
            p99_ns: snap.quantile(0.99),
            mean_ns: snap.mean() as u64,
            batch_p95_ns: batch_hist.snapshot().quantile(0.95),
            failures,
            failure_rate,
            sustainable: p95 <= config.slo.as_nanos() as u64
                && failure_rate <= config.stop_failure_rate,
            pool_jobs: pool_delta.jobs_run,
            pool_shards: pool_delta.shards_executed,
            pool_inline: pool_delta.inline_runs,
            pool_chunks: pool_delta.chunks_claimed,
            pool_steals: pool_delta.steals,
            update_groups,
            group_conflicts,
            migrations,
            rebalances,
            trace_total_ns: round_total,
            trace_plan_ns: round_trace[0],
            trace_group_ns: round_trace[1],
            trace_apply_ns: round_trace[2],
            trace_snapshot_ns: round_trace[3],
            trace_wal_ns: round_trace[4],
            trace_plan_wall_ns: round_wall[0],
            trace_group_wall_ns: round_wall[1],
            trace_apply_wall_ns: round_wall[2],
            trace_snapshot_wall_ns: round_wall[3],
            trace_wal_wall_ns: round_wall[4],
        };
        let stop = record.failure_rate > config.stop_failure_rate
            || record.p50_ns > config.stop_t_median.as_nanos() as u64
            || offered >= config.max_rps;
        records.push(record);
        if stop {
            break;
        }
        offered = (offered + config.increment_rps).min(config.max_rps);
        round += 1;
    }
    (records, slowest)
}

/// The knee of a ramp: the highest offered rps among sustainable rounds
/// (`None` when even the first round missed the SLO).
pub fn knee_point(records: &[ServeRecord]) -> Option<u64> {
    records
        .iter()
        .filter(|r| r.sustainable)
        .map(|r| r.offered_rps)
        .max()
}

/// Serialize an E4 run as `BENCH_serve_latency.json` (hand-rolled JSON; see
/// [`crate::bench_records_to_json`]).
pub fn serve_records_to_json(
    meta: &RunMeta,
    config: &RampConfig,
    records: &[ServeRecord],
) -> String {
    let knee = knee_point(records);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"serve_latency\",\n");
    out.push_str("  \"unit\": \"rps\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"threads\": {}, \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.threads, meta.par_cutoff
    ));
    out.push_str(&format!(
        "  \"config\": {{\"initial_rps\": {}, \"increment_rps\": {}, \"max_rps\": {}, \"round_ops\": {}, \"slo_ms\": {}, \"timeout_ms\": {}, \"stop_failure_rate\": {}, \"stop_t_median_ms\": {}}},\n",
        config.initial_rps,
        config.increment_rps,
        config.max_rps,
        config.round_ops,
        config.slo.as_millis(),
        config.timeout.as_millis(),
        config.stop_failure_rate,
        config.stop_t_median.as_millis()
    ));
    // Phase attribution at the knee: each phase's share of the knee
    // round's slowest captured batch (null when the knee round was
    // untraced or captured nothing). Two families per phase:
    //
    // * `*_thread_share` divides summed *thread-time* by the batch's
    //   wall-clock — a phase running concurrently on several pool workers
    //   (apply, typically) can legitimately exceed 1.0. It answers
    //   "where did the CPUs go".
    // * `*_wall_share` divides the phase's interval *union* by the same
    //   wall-clock — overlapping worker spans count once, so it is always
    //   ≤ 1.0. It answers "what was the batch waiting on".
    let knee_phases = knee
        .and_then(|k| {
            records
                .iter()
                .rfind(|r| r.sustainable && r.offered_rps == k)
        })
        .filter(|r| r.trace_total_ns > 0)
        .map_or("null".to_string(), |r| {
            let share = |ns: u64| ns as f64 / r.trace_total_ns as f64;
            format!(
                "{{\"plan_thread_share\": {:.4}, \"plan_wall_share\": {:.4}, \"group_thread_share\": {:.4}, \"group_wall_share\": {:.4}, \"apply_thread_share\": {:.4}, \"apply_wall_share\": {:.4}, \"snapshot_thread_share\": {:.4}, \"snapshot_wall_share\": {:.4}, \"wal_thread_share\": {:.4}, \"wal_wall_share\": {:.4}}}",
                share(r.trace_plan_ns),
                share(r.trace_plan_wall_ns),
                share(r.trace_group_ns),
                share(r.trace_group_wall_ns),
                share(r.trace_apply_ns),
                share(r.trace_apply_wall_ns),
                share(r.trace_snapshot_ns),
                share(r.trace_snapshot_wall_ns),
                share(r.trace_wal_ns),
                share(r.trace_wal_wall_ns)
            )
        });
    out.push_str(&format!(
        "  \"headline\": {{\"knee_rps\": {}, \"slo_p95_ms\": {}, \"knee_phase_shares\": {}}},\n",
        knee.map_or("null".to_string(), |k| k.to_string()),
        config.slo.as_millis(),
        knee_phases
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"shards\": {}, \"tenants\": {}, \"k\": {}, \"partitions\": {}, \"round\": {}, \"offered_rps\": {}, \"ops\": {}, \"achieved_rps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}, \"batch_p95_us\": {:.1}, \"failures\": {}, \"failure_rate\": {:.4}, \"sustainable\": {}, \"pool_jobs\": {}, \"pool_shards\": {}, \"pool_inline\": {}, \"pool_chunks\": {}, \"pool_steals\": {}, \"update_groups\": {}, \"group_conflicts\": {}, \"migrations\": {}, \"rebalances\": {}, \"trace_total_us\": {:.1}, \"trace_plan_us\": {:.1}, \"trace_group_us\": {:.1}, \"trace_apply_us\": {:.1}, \"trace_snapshot_us\": {:.1}, \"trace_wal_us\": {:.1}, \"trace_plan_wall_us\": {:.1}, \"trace_group_wall_us\": {:.1}, \"trace_apply_wall_us\": {:.1}, \"trace_snapshot_wall_us\": {:.1}, \"trace_wal_wall_us\": {:.1}}}{}\n",
            r.scenario,
            r.shards,
            r.tenants,
            r.k,
            r.partitions,
            r.round,
            r.offered_rps,
            r.ops,
            r.achieved_rps,
            r.p50_ns as f64 / 1e3,
            r.p95_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.mean_ns as f64 / 1e3,
            r.batch_p95_ns as f64 / 1e3,
            r.failures,
            r.failure_rate,
            r.sustainable,
            r.pool_jobs,
            r.pool_shards,
            r.pool_inline,
            r.pool_chunks,
            r.pool_steals,
            r.update_groups,
            r.group_conflicts,
            r.migrations,
            r.rebalances,
            r.trace_total_ns as f64 / 1e3,
            r.trace_plan_ns as f64 / 1e3,
            r.trace_group_ns as f64 / 1e3,
            r.trace_apply_ns as f64 / 1e3,
            r.trace_snapshot_ns as f64 / 1e3,
            r.trace_wal_ns as f64 / 1e3,
            r.trace_plan_wall_ns as f64 / 1e3,
            r.trace_group_wall_ns as f64 / 1e3,
            r.trace_apply_wall_ns as f64 / 1e3,
            r.trace_snapshot_wall_ns as f64 / 1e3,
            r.trace_wal_wall_ns as f64 / 1e3,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The flight recorder is process-global: ramp tests that trace must
    /// not interleave their capture/drain cycles.
    static RECORDER_LOCK: Mutex<()> = Mutex::new(());

    fn tiny_config() -> RampConfig {
        RampConfig {
            initial_rps: 50_000,
            increment_rps: 50_000,
            max_rps: 100_000,
            round_ops: 128,
            slo: Duration::from_secs(5),
            timeout: Duration::from_secs(10),
            stop_failure_rate: 0.5,
            stop_t_median: Duration::from_secs(5),
            trace_sample: 1,
        }
    }

    #[test]
    fn tiny_ramp_produces_rounds_and_knee() {
        let _serial = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scenario = ServeScenario {
            name: "test",
            tenants: 3,
            tenant_vertices: 64,
            shards: 2,
            batch_size: 32,
            zipf_permille: 0,
            partitions: 0,
            seed: 7,
        };
        let config = tiny_config();
        let (records, slowest) = drive_serve_ramp(&scenario, &config);
        assert!(!records.is_empty() && records.len() <= 2);
        assert!(records.iter().all(|r| r.ops >= 128));
        // Generous SLO: every round sustains, knee = last offered rate.
        assert_eq!(
            knee_point(&records),
            Some(records.last().unwrap().offered_rps)
        );
        // Every batch traced with a 1ns capture threshold: each round must
        // carry a phase breakdown and the ramp a slowest capture.
        assert!(records.iter().all(|r| r.trace_total_ns > 0));
        // Single-structure engines never group or migrate.
        assert!(records.iter().all(|r| r.update_groups == 0));
        assert!(records.iter().all(|r| r.migrations == 0));
        let slowest = slowest.expect("traced ramp pins at least one batch");
        assert!(!slowest.events.is_empty());
        let json = serve_records_to_json(&RunMeta::collect(), &config, &records);
        assert!(json.contains("\"knee_rps\""));
        assert!(json.contains("\"knee_phase_shares\""));
        // Both share families present (knee round is traced here).
        assert!(json.contains("\"apply_thread_share\""));
        assert!(json.contains("\"apply_wall_share\""));
        assert!(json.contains("\"scenario\": \"test\""));
        assert!(json.contains("\"partitions\": 0"));
        assert!(json.contains("\"pool_jobs\""));
        assert!(json.contains("\"trace_total_us\""));
        assert!(json.contains("\"trace_apply_wall_us\""));
    }

    #[test]
    fn partitioned_ramp_stamps_group_attribution() {
        let _serial = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let scenario = ServeScenario {
            name: "test_parts",
            tenants: 2,
            tenant_vertices: 64,
            shards: 2,
            batch_size: 32,
            zipf_permille: 0,
            partitions: 4,
            seed: 11,
        };
        let mut config = tiny_config();
        config.max_rps = 50_000;
        let (records, _) = drive_serve_ramp(&scenario, &config);
        assert!(!records.is_empty());
        for r in &records {
            assert_eq!(r.partitions, 4);
            assert!(
                r.update_groups > 0,
                "partitioned engines must dispatch update groups"
            );
            assert!(r.trace_total_ns > 0);
            // Wall-time is an interval union: it can never exceed the
            // capture's end-to-end span (thread-time can).
            for wall in [
                r.trace_plan_wall_ns,
                r.trace_group_wall_ns,
                r.trace_apply_wall_ns,
                r.trace_snapshot_wall_ns,
                r.trace_wal_wall_ns,
            ] {
                assert!(wall <= r.trace_total_ns);
            }
        }
        let json = serve_records_to_json(&RunMeta::collect(), &config, &records);
        assert!(json.contains("\"partitions\": 4"));
        assert!(json.contains("\"update_groups\""));
        assert!(json.contains("\"rebalances\""));
    }
}
