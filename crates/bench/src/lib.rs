//! Shared harness code for the benchmark suite and the `experiments` binary.
//!
//! The paper has no experimental section, so the `experiments` binary in
//! this crate defines the evaluation (experiments E0–E11) that validates
//! its analytical claims. This crate provides the common machinery: stream
//! construction (update streams, batched update/query streams and
//! tenant-tagged multi-tenant streams), structure, batch-engine and
//! sharded-service drivers, wall-clock measurement, the PRAM cost
//! extraction, and the machine-readable record types behind
//! `BENCH_update_time.json` (E0), `BENCH_batch_throughput.json` (E1) and
//! `BENCH_shard_throughput.json` (E2), used by both the harness benches
//! and the table-printing binary.

pub mod harness;
pub mod serve;

use pdmsf_core::{ParDynamicMsf, SeqDynamicMsf};
use pdmsf_engine::{Engine, Op};
use pdmsf_graph::{
    BatchKind, BatchOp, BatchStream, BatchStreamSpec, DynamicMsf, EdgeId, GraphSpec, StreamKind,
    TenantOp, TenantStream, TenantStreamSpec, UpdateOp, UpdateStream, UpdateStreamSpec, VertexId,
    Weight,
};
use pdmsf_pram::CostReport;
use pdmsf_shard::ShardedService;
use std::time::{Duration, Instant};

/// Insert-only stream over a random sparse graph (the "growing network"
/// workload of the `BENCH_update_time.json` pipeline).
pub fn insert_stream(n: usize, m: usize, ops: usize, seed: u64) -> UpdateStream {
    UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse { n, m, seed },
        ops,
        kind: StreamKind::Mixed {
            insert_permille: 1000,
        },
        seed: seed ^ 0x1A5E,
    })
}

/// Standard mixed insert/delete stream over a random sparse graph.
pub fn mixed_stream(n: usize, m: usize, ops: usize, seed: u64) -> UpdateStream {
    UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse { n, m, seed },
        ops,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: seed ^ 0x5EED,
    })
}

/// Grid ("road network") failure/repair stream.
pub fn grid_stream(rows: usize, cols: usize, ops: usize, seed: u64) -> UpdateStream {
    UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::Grid { rows, cols, seed },
        ops,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: seed ^ 0x60D5,
    })
}

/// Delete-only failure stream (adversarial for the MWR search).
pub fn failure_stream(n: usize, m: usize, seed: u64) -> UpdateStream {
    UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse { n, m, seed },
        ops: m,
        kind: StreamKind::Failures,
        seed: seed ^ 0xFA11,
    })
}

/// Bursty batched update/query stream: per-batch hotspots, flapping links
/// (opposing insert/delete pairs within a batch) and a query-heavy mix with
/// natural duplicates — the E1 serving workload.
pub fn bursty_batch_stream(
    n: usize,
    m: usize,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> BatchStream {
    BatchStream::generate(&BatchStreamSpec {
        base: GraphSpec::RandomSparse { n, m, seed },
        batches,
        batch_size,
        kind: BatchKind::Bursty {
            query_permille: 550,
            flap_permille: 350,
        },
        seed: seed ^ 0xB457,
    })
}

/// Tenant-clustered batched stream: each batch's traffic stays inside one
/// vertex block (the E1 multi-tenant workload).
pub fn clustered_batch_stream(
    n: usize,
    m: usize,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> BatchStream {
    BatchStream::generate(&BatchStreamSpec {
        base: GraphSpec::RandomSparse { n, m, seed },
        batches,
        batch_size,
        kind: BatchKind::Clustered {
            clusters: 8,
            query_permille: 500,
        },
        seed: seed ^ 0xC105,
    })
}

/// Block-mixed batched stream: every operation stays inside one of
/// `clusters` vertex blocks but each op picks its block independently, so a
/// single batch spreads across many blocks — the E6 grouped-apply workload
/// (blocks aligned with the partitioned structure's homes become
/// independent update groups). Update-heavy (15% queries) so the apply
/// phase dominates the timed region.
pub fn clustered_mix_batch_stream(
    n: usize,
    m: usize,
    batches: usize,
    batch_size: usize,
    clusters: usize,
    seed: u64,
) -> BatchStream {
    BatchStream::generate(&BatchStreamSpec {
        base: GraphSpec::RandomSparse { n, m, seed },
        batches,
        batch_size,
        kind: BatchKind::ClusteredMix {
            clusters,
            query_permille: 150,
        },
        seed: seed ^ 0xC316,
    })
}

/// Migration-churn batched stream: the E6 **migration-heavy** workload
/// that separates adaptive partition rebalancing from static homes.
///
/// Batch 0 builds one chain component per vertex block (blocks aligned
/// with the partitioned structure's initial homes). The remaining batches
/// cycle through three phases with period `cycle` (`cycle >= batches`
/// gives a single pile-up followed by pure churn):
///
/// 1. **Concentrate** — a bridge link from every other block's chain to
///    vertex 0. Cross-partition links migrate the smaller side (`u` on a
///    tie), so each bridge drags that block's whole component into vertex
///    0's partition; by the end of the batch *every* component is homed
///    there.
/// 2. **Cut** — delete the bridges. The chains are separate components
///    again but all still live in one partition: without rebalancing the
///    structure stays collapsed forever (block-local churn never crosses
///    partitions, so nothing migrates back out).
/// 3. **Churn** (the remaining `cycle - 2` batches of each period) —
///    block-local link/cut pairs plus connectivity queries across all
///    blocks: the parallelizable work. A rebalancing engine re-homed the
///    chains after the cut batch and colors ~one group per block; a
///    static engine sees every update in the one loaded partition and
///    collapses to a single serial group *and* pays the bigger collapsed
///    structure on every operation. Migration itself costs edge mass
///    (every migrated edge re-inserts), so the churn span is what the
///    adaptive arm's rebalance buys back — `cycle` sets that ratio.
///
/// Deterministic for a given seed (hand-rolled xorshift), so the adaptive
/// and static arms replay the identical stream and their forests must
/// agree bit-for-bit.
pub fn migration_churn_batch_stream(
    n: usize,
    batches: usize,
    batch_size: usize,
    blocks: usize,
    cycle: usize,
    seed: u64,
) -> BatchStream {
    assert!(
        blocks >= 2 && n.is_multiple_of(blocks),
        "blocks must divide n"
    );
    assert!(
        cycle >= 3,
        "a cycle needs concentrate, cut and churn phases"
    );
    let bsize = n / blocks;
    assert!(bsize >= 2, "blocks need at least two vertices");
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut out: Vec<Vec<BatchOp>> = Vec::with_capacity(batches + 1);
    let mut next_id = 0u32;
    let mut build = Vec::with_capacity(blocks * (bsize - 1));
    for b in 0..blocks {
        for i in 0..bsize - 1 {
            let u = (b * bsize + i) as u32;
            build.push(BatchOp::Link {
                u: VertexId(u),
                v: VertexId(u + 1),
                weight: Weight::new((rng() % 1_000 + 1) as i64),
            });
            next_id += 1;
        }
    }
    out.push(build);

    let mut bridges: Vec<EdgeId> = Vec::new();
    // Block-local churn edges linked in *earlier* batches (cutting an edge
    // linked in the same batch would just be a cancelled pair).
    let mut cuttable: std::collections::VecDeque<EdgeId> = std::collections::VecDeque::new();
    for t in 0..batches {
        let mut batch = Vec::with_capacity(batch_size);
        match t % cycle {
            0 => {
                for b in 1..blocks {
                    batch.push(BatchOp::Link {
                        u: VertexId((b * bsize) as u32),
                        v: VertexId(0),
                        weight: Weight::new(1_000_000),
                    });
                    bridges.push(EdgeId(next_id));
                    next_id += 1;
                }
            }
            1 => {
                for id in bridges.drain(..) {
                    batch.push(BatchOp::Cut { id });
                }
            }
            _ => {
                let updates = batch_size * 850 / 1_000;
                let mut old_edges = cuttable.len();
                let mut b = 0usize;
                while batch.len() < updates {
                    if old_edges > 0 && batch.len() % 2 == 1 {
                        batch.push(BatchOp::Cut {
                            id: cuttable.pop_front().expect("counted above"),
                        });
                        old_edges -= 1;
                    } else {
                        let base = (b % blocks) * bsize;
                        let u = base + (rng() % bsize as u64) as usize;
                        let mut v = base + (rng() % bsize as u64) as usize;
                        if v == u {
                            v = base + (u - base + 1) % bsize;
                        }
                        batch.push(BatchOp::Link {
                            u: VertexId(u as u32),
                            v: VertexId(v as u32),
                            weight: Weight::new((rng() % 1_000 + 1) as i64),
                        });
                        cuttable.push_back(EdgeId(next_id));
                        next_id += 1;
                        b += 1;
                    }
                }
            }
        }
        while batch.len() < batch_size {
            let u = (rng() % n as u64) as u32;
            let v = (rng() % n as u64) as u32;
            batch.push(BatchOp::QueryConnected {
                u: VertexId(u),
                v: VertexId(v),
            });
        }
        out.push(batch);
    }
    BatchStream {
        num_vertices: n,
        base_edges: Vec::new(),
        batches: out,
    }
}

/// Multi-tenant tenant-tagged stream with Zipf-skewed tenant popularity and
/// bursty per-tenant traffic (flap pairs, duplicate queries) — the E2
/// serving workload. `zipf_permille = 0` gives uniform popularity.
pub fn tenant_stream(
    tenants: usize,
    tenant_vertices: usize,
    batches: usize,
    batch_size: usize,
    zipf_permille: u32,
    seed: u64,
) -> TenantStream {
    TenantStream::generate(&TenantStreamSpec {
        tenants,
        tenant_vertices,
        tenant_edges: 2 * tenant_vertices,
        batches,
        batch_size,
        burst: (batch_size / 8).max(1),
        zipf_permille,
        kind: BatchKind::Bursty {
            query_permille: 550,
            flap_permille: 350,
        },
        seed: seed ^ 0x5AA2_D001,
    })
}

/// One flat [`Engine`] over the **merged** vertex space of every tenant —
/// the baseline the sharded service is measured against in E2. Tenant
/// vertices translate by a per-tenant block offset and tenant-local edge
/// ids through per-tenant id maps that mirror the merged engine's global
/// sequential allocation, so the same tenant-tagged stream drives both
/// paths. (Tenant weight queries become whole-forest weight queries here —
/// cheaper than the sharded service's per-tenant sweeps, which only biases
/// the comparison *against* sharding.)
pub struct MergedTenantEngine {
    engine: Engine,
    tenant_vertices: usize,
    id_maps: Vec<Vec<EdgeId>>,
    next_gid: u32,
    scratch: Vec<BatchOp>,
}

impl MergedTenantEngine {
    /// A merged engine over `tenants * tenant_vertices` vertices.
    pub fn new(tenants: usize, tenant_vertices: usize) -> MergedTenantEngine {
        MergedTenantEngine {
            engine: Engine::new(tenants * tenant_vertices),
            tenant_vertices,
            id_maps: vec![Vec::new(); tenants],
            next_gid: 0,
            scratch: Vec::new(),
        }
    }

    /// Translate and execute one tenant-tagged batch.
    pub fn execute(&mut self, ops: &[TenantOp]) -> pdmsf_engine::BatchResult {
        let block = self.tenant_vertices as u32;
        self.scratch.clear();
        for top in ops {
            let t = top.tenant.index();
            let offset = |v: VertexId| VertexId(top.tenant.0 * block + v.0);
            let op = match top.op {
                BatchOp::Link { u, v, weight } => {
                    // Every generated link is valid, so it consumes the next
                    // global id — mirror the allocation for later Cuts.
                    self.id_maps[t].push(EdgeId(self.next_gid));
                    self.next_gid += 1;
                    BatchOp::Link {
                        u: offset(u),
                        v: offset(v),
                        weight,
                    }
                }
                BatchOp::Cut { id } => BatchOp::Cut {
                    id: self.id_maps[t][id.index()],
                },
                BatchOp::QueryConnected { u, v } => BatchOp::QueryConnected {
                    u: offset(u),
                    v: offset(v),
                },
                BatchOp::QueryForestWeight => BatchOp::QueryForestWeight,
            };
            self.scratch.push(op);
        }
        let batch = std::mem::take(&mut self.scratch);
        let result = self.engine.execute(&batch);
        self.scratch = batch;
        result
    }

    /// The underlying merged engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

/// Feed a tenant stream's per-tenant base graphs into the sharded service
/// (untimed), then drive every service batch through
/// [`ShardedService::execute`] (timed). Returns (wall clock, ops).
pub fn drive_service_sharded(
    service: &mut ShardedService,
    stream: &TenantStream,
) -> (Duration, usize) {
    service.execute(&stream.base_ops());
    let mut elapsed = Duration::ZERO;
    let mut ops = 0usize;
    for batch in &stream.batches {
        let start = Instant::now();
        service.execute(batch);
        elapsed += start.elapsed();
        ops += batch.len();
    }
    (elapsed, ops)
}

/// Same stream through the flat merged single-engine baseline (base graphs
/// untimed, batches timed). Returns (wall clock, ops).
pub fn drive_service_flat(
    merged: &mut MergedTenantEngine,
    stream: &TenantStream,
) -> (Duration, usize) {
    merged.execute(&stream.base_ops());
    let mut elapsed = Duration::ZERO;
    let mut ops = 0usize;
    for batch in &stream.batches {
        let start = Instant::now();
        merged.execute(batch);
        elapsed += start.elapsed();
        ops += batch.len();
    }
    (elapsed, ops)
}

/// Feed a batch stream's base graph into an engine (untimed), then drive
/// every batch through [`Engine::execute`] (timed). Returns (batch wall
/// clock, operations processed).
pub fn drive_engine_batched(engine: &mut Engine, stream: &BatchStream) -> (Duration, usize) {
    drive_engine(engine, stream, Engine::execute)
}

/// Same stream, but every batch goes through the one-op-at-a-time path
/// ([`Engine::execute_one_by_one`]) — the baseline the batched path is
/// measured against.
pub fn drive_engine_one_by_one(engine: &mut Engine, stream: &BatchStream) -> (Duration, usize) {
    drive_engine(engine, stream, Engine::execute_one_by_one)
}

fn drive_engine(
    engine: &mut Engine,
    stream: &BatchStream,
    step: impl Fn(&mut Engine, &[Op]) -> pdmsf_engine::BatchResult,
) -> (Duration, usize) {
    let base: Vec<Op> = stream
        .base_edges
        .iter()
        .map(|&(u, v, weight)| Op::Link { u, v, weight })
        .collect();
    step(engine, &base);
    let mut elapsed = Duration::ZERO;
    let mut ops = 0usize;
    for batch in &stream.batches {
        let start = Instant::now();
        step(engine, batch);
        elapsed += start.elapsed();
        ops += batch.len();
    }
    (elapsed, ops)
}

/// Drive a structure through a stream (base graph + all operations).
/// Returns the wall-clock time spent inside the structure's updates.
pub fn drive<M: DynamicMsf>(structure: &mut M, stream: &UpdateStream) -> Duration {
    let mut elapsed = Duration::ZERO;
    stream.replay_with(|mirror, op| match op {
        None => {
            let start = Instant::now();
            for e in mirror.edges() {
                structure.insert(e);
            }
            elapsed += start.elapsed();
        }
        Some(UpdateOp::Insert { .. }) => {
            let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
            let start = Instant::now();
            structure.insert(newest);
            elapsed += start.elapsed();
        }
        Some(UpdateOp::Delete { id }) => {
            let start = Instant::now();
            structure.delete(*id);
            elapsed += start.elapsed();
        }
    });
    elapsed
}

/// Drive only the update portion (the base graph is loaded outside the
/// timed region). Returns (updates-only wall clock, number of updates).
pub fn drive_updates_only<M: DynamicMsf>(
    structure: &mut M,
    stream: &UpdateStream,
) -> (Duration, usize) {
    let mut elapsed = Duration::ZERO;
    let mut updates = 0usize;
    stream.replay_with(|mirror, op| match op {
        None => {
            for e in mirror.edges() {
                structure.insert(e);
            }
        }
        Some(UpdateOp::Insert { .. }) => {
            let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
            let start = Instant::now();
            structure.insert(newest);
            elapsed += start.elapsed();
            updates += 1;
        }
        Some(UpdateOp::Delete { id }) => {
            let start = Instant::now();
            structure.delete(*id);
            elapsed += start.elapsed();
            updates += 1;
        }
    });
    (elapsed, updates)
}

/// Summary of a PRAM-cost run of the parallel structure.
#[derive(Clone, Copy, Debug)]
pub struct PramRun {
    /// Number of vertices.
    pub n: usize,
    /// Chunk parameter used.
    pub k: usize,
    /// Worst single update.
    pub worst: CostReport,
    /// Mean parallel depth per update.
    pub mean_depth: f64,
    /// Mean work per update.
    pub mean_work: f64,
    /// Peak processors over the run.
    pub peak_processors: u64,
}

/// Run the parallel (EREW-accounted) structure over a standard mixed stream
/// and collect its PRAM cost profile.
pub fn pram_profile(n: usize, ops: usize, seed: u64) -> PramRun {
    let stream = mixed_stream(n, 2 * n, ops, seed);
    let mut msf = ParDynamicMsf::new(n);
    drive(&mut msf, &stream);
    PramRun {
        n,
        k: msf.chunk_parameter(),
        worst: msf.meter().worst_op(),
        mean_depth: msf.meter().mean_depth(),
        mean_work: msf.meter().mean_work(),
        peak_processors: msf.meter().total().peak_processors,
    }
}

/// Per-update mean wall-clock of the sequential structure with an explicit
/// chunk parameter (used by the K-ablation experiment).
pub fn seq_mean_update_time(n: usize, k: usize, ops: usize, seed: u64) -> Duration {
    let stream = mixed_stream(n, 2 * n, ops, seed);
    let mut msf = SeqDynamicMsf::with_chunk_parameter(n, k);
    let (elapsed, updates) = drive_updates_only(&mut msf, &stream);
    if updates == 0 {
        Duration::ZERO
    } else {
        elapsed / updates as u32
    }
}

// ---------------------------------------------------------------------
// Machine-readable benchmark records (BENCH_update_time.json)
// ---------------------------------------------------------------------

/// One measured (structure, stream, n) cell of the update-time benchmark.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Structure label (e.g. `"arena-seq"`, `"map-seq"`, `"par-threads"`).
    pub structure: String,
    /// Stream label (`"insert"`, `"delete"`, `"mixed"`).
    pub stream: String,
    /// Number of vertices.
    pub n: usize,
    /// Chunk parameter `K` the structure ran with.
    pub k: usize,
    /// Kernel execution mode label (`"simulated"` / `"threads"`).
    pub exec: &'static str,
    /// Number of timed update operations.
    pub ops: usize,
    /// Wall-clock nanoseconds spent inside the timed updates.
    pub elapsed_ns: u128,
}

impl BenchRecord {
    /// Updates per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Run-level metadata stamped into the benchmark JSON so perf trajectories
/// across PRs stay attributable: which commit produced the numbers, how many
/// pool threads the kernels could use, and the threading cutoff in force.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// `git rev-parse HEAD` of the working tree (`"unknown"` outside git),
    /// with a `-dirty` suffix when uncommitted changes were present.
    pub git_sha: String,
    /// Worker-pool width available to the threaded kernels (workers + the
    /// calling thread).
    pub threads: usize,
    /// [`pdmsf_pram::kernels::PAR_CUTOFF`] at build time.
    pub par_cutoff: usize,
}

impl RunMeta {
    /// Collect the metadata of the current process / checkout.
    pub fn collect() -> RunMeta {
        let git_sha = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let dirty = std::process::Command::new("git")
            .args(["status", "--porcelain"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .is_some_and(|o| !o.stdout.is_empty());
        RunMeta {
            git_sha: if dirty && git_sha != "unknown" {
                format!("{git_sha}-dirty")
            } else {
                git_sha
            },
            threads: pdmsf_pram::pool::parallelism(),
            par_cutoff: pdmsf_pram::kernels::PAR_CUTOFF,
        }
    }
}

/// Serialize benchmark records as JSON (hand-rolled: all values are numbers
/// or label strings that never need escaping, and the offline build has no
/// serde).
pub fn bench_records_to_json(benchmark: &str, meta: &RunMeta, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{benchmark}\",\n"));
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"threads\": {}, \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.threads, meta.par_cutoff
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"structure\": \"{}\", \"stream\": \"{}\", \"n\": {}, \"k\": {}, \"exec\": \"{}\", \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.2}}}{}\n",
            r.structure,
            r.stream,
            r.n,
            r.k,
            r.exec,
            r.ops,
            r.elapsed_ns,
            r.ops_per_sec(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Batch-throughput records (BENCH_batch_throughput.json)
// ---------------------------------------------------------------------

/// One measured (path, stream, n, batch size) cell of the E1 batch
/// throughput benchmark.
#[derive(Clone, Debug)]
pub struct BatchRecord {
    /// Engine path (`"batched"` / `"one-by-one"`).
    pub path: String,
    /// Stream label (`"bursty"` / `"clustered"`).
    pub stream: String,
    /// Number of vertices.
    pub n: usize,
    /// Chunk parameter `K` the backing structure ran with.
    pub k: usize,
    /// Kernel execution mode label.
    pub exec: &'static str,
    /// Operations per batch.
    pub batch_size: usize,
    /// Number of timed batches.
    pub batches: usize,
    /// Total timed operations (updates + queries).
    pub ops: usize,
    /// Wall-clock nanoseconds spent inside the timed batches.
    pub elapsed_ns: u128,
}

impl BatchRecord {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Serialize batch-throughput records as JSON, stamped with the same run
/// metadata as `BENCH_update_time.json` (hand-rolled for the same reason as
/// [`bench_records_to_json`]).
pub fn batch_records_to_json(meta: &RunMeta, records: &[BatchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"batch_throughput\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"threads\": {}, \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.threads, meta.par_cutoff
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"stream\": \"{}\", \"n\": {}, \"k\": {}, \"exec\": \"{}\", \"batch_size\": {}, \"batches\": {}, \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.2}}}{}\n",
            r.path,
            r.stream,
            r.n,
            r.k,
            r.exec,
            r.batch_size,
            r.batches,
            r.ops,
            r.elapsed_ns,
            r.ops_per_sec(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Shard-throughput records (BENCH_shard_throughput.json)
// ---------------------------------------------------------------------

/// One measured (path, shard count, size, skew) cell of the E2 shard
/// throughput benchmark. On top of the usual wall-clock fields, each record
/// carries the **pool-stats delta** of its timed region
/// (`pdmsf_pram::pool::snapshot`), so pool activity — dispatched jobs,
/// executed shards, inline degradations — is attributable per cell.
#[derive(Clone, Debug)]
pub struct ShardRecord {
    /// Execution path (`"sharded"` / `"flat-merged"`).
    pub path: String,
    /// Shard count of the service (1 for the flat-merged engine).
    pub shards: usize,
    /// Number of tenants.
    pub tenants: usize,
    /// Vertices per tenant.
    pub tenant_n: usize,
    /// Merged vertex-space size (`tenants * tenant_n`).
    pub total_n: usize,
    /// Tenant popularity skew of the stream, in permille.
    pub zipf_permille: u32,
    /// Operations per service batch.
    pub batch_size: usize,
    /// Number of timed service batches.
    pub batches: usize,
    /// Total timed operations.
    pub ops: usize,
    /// Wall-clock nanoseconds inside the timed batches.
    pub elapsed_ns: u128,
    /// Pool jobs dispatched during the timed region.
    pub pool_jobs: u64,
    /// Pool shards executed during the timed region.
    pub pool_shards: u64,
    /// Inline (non-pooled) runs during the timed region.
    pub pool_inline: u64,
    /// Injector chunks claimed during the timed region (each one shared-
    /// queue interaction covering a run of shards).
    pub pool_chunks: u64,
    /// Successful work steals during the timed region (0 when the pool ran
    /// inline or stayed balanced).
    pub pool_steals: u64,
}

impl ShardRecord {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Serialize shard-throughput records as JSON, stamped with the same run
/// metadata as the other benchmark artifacts (hand-rolled for the same
/// reason as [`bench_records_to_json`]).
pub fn shard_records_to_json(meta: &RunMeta, records: &[ShardRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"shard_throughput\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"threads\": {}, \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.threads, meta.par_cutoff
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"shards\": {}, \"tenants\": {}, \"tenant_n\": {}, \"total_n\": {}, \"zipf_permille\": {}, \"batch_size\": {}, \"batches\": {}, \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.2}, \"pool_jobs\": {}, \"pool_shards\": {}, \"pool_inline\": {}, \"pool_chunks\": {}, \"pool_steals\": {}}}{}\n",
            r.path,
            r.shards,
            r.tenants,
            r.tenant_n,
            r.total_n,
            r.zipf_permille,
            r.batch_size,
            r.batches,
            r.ops,
            r.elapsed_ns,
            r.ops_per_sec(),
            r.pool_jobs,
            r.pool_shards,
            r.pool_inline,
            r.pool_chunks,
            r.pool_steals,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Scheduler-throughput records (BENCH_sched_throughput.json)
// ---------------------------------------------------------------------

/// One measured scenario cell of the E3 scheduler benchmark: a
/// many-small-jobs workload driven straight through the worker pool (or
/// through the sharded service for the end-to-end scenario), stamped with
/// the pool-stats delta of its timed region so claims, steals and inline
/// degradations are attributable per cell.
#[derive(Clone, Debug)]
pub struct SchedRecord {
    /// Scenario label (`"many-small"`, `"imbalanced"`, `"nested"`,
    /// `"service-small"`).
    pub scenario: String,
    /// Concurrent submitter threads.
    pub submitters: usize,
    /// Jobs submitted per submitter (service batches for
    /// `"service-small"`).
    pub jobs: usize,
    /// Shards per job (service shard count for `"service-small"`).
    pub shards_per_job: usize,
    /// Nested submission depth (1 = flat jobs).
    pub depth: usize,
    /// Total timed operations (shard executions; tenant ops for
    /// `"service-small"`).
    pub ops: usize,
    /// Wall-clock nanoseconds of the timed region.
    pub elapsed_ns: u128,
    /// Pool jobs completed during the timed region.
    pub pool_jobs: u64,
    /// Pool shards executed during the timed region.
    pub pool_shards: u64,
    /// Inline (non-pooled) runs during the timed region.
    pub pool_inline: u64,
    /// Injector chunks claimed during the timed region.
    pub pool_chunks: u64,
    /// Successful work steals during the timed region.
    pub pool_steals: u64,
}

impl SchedRecord {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Serialize scheduler-throughput records as JSON, stamped with the same
/// run metadata as the other benchmark artifacts (hand-rolled for the same
/// reason as [`bench_records_to_json`]).
pub fn sched_records_to_json(meta: &RunMeta, records: &[SchedRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"sched_throughput\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"threads\": {}, \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.threads, meta.par_cutoff
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"submitters\": {}, \"jobs\": {}, \"shards_per_job\": {}, \"depth\": {}, \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.2}, \"pool_jobs\": {}, \"pool_shards\": {}, \"pool_inline\": {}, \"pool_chunks\": {}, \"pool_steals\": {}}}{}\n",
            r.scenario,
            r.submitters,
            r.jobs,
            r.shards_per_job,
            r.depth,
            r.ops,
            r.elapsed_ns,
            r.ops_per_sec(),
            r.pool_jobs,
            r.pool_shards,
            r.pool_inline,
            r.pool_chunks,
            r.pool_steals,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Persistence warm-start records (BENCH_persist.json)
// ---------------------------------------------------------------------

/// One measured (n, batch size) cell of the E5 persistence benchmark:
/// checkpoint size and wall time, restore (warm-start) wall time, and the
/// cold-rebuild wall time it competes with — replaying the full op stream
/// through the engine from scratch.
#[derive(Clone, Debug)]
pub struct PersistRecord {
    /// Scenario label (`"engine"` / `"service"`).
    pub scenario: String,
    /// Number of vertices.
    pub n: usize,
    /// Chunk parameter `K` the backing structure ran with.
    pub k: usize,
    /// Total update operations executed before the checkpoint.
    pub ops: usize,
    /// Live edges at checkpoint time.
    pub live_edges: usize,
    /// Checkpoint size in bytes.
    pub checkpoint_bytes: usize,
    /// Wall-clock nanoseconds to write the checkpoint.
    pub checkpoint_ns: u128,
    /// Wall-clock nanoseconds to restore from the checkpoint.
    pub restore_ns: u128,
    /// Wall-clock nanoseconds to rebuild the same state cold (full op
    /// replay through the normal execution path).
    pub cold_rebuild_ns: u128,
}

impl PersistRecord {
    /// Cold-rebuild time over restore time (higher = warm start wins more).
    pub fn speedup(&self) -> f64 {
        if self.restore_ns == 0 {
            0.0
        } else {
            self.cold_rebuild_ns as f64 / self.restore_ns as f64
        }
    }
}

/// Serialize persistence warm-start records as JSON, stamped with the same
/// run metadata as the other benchmark artifacts (hand-rolled for the same
/// reason as [`bench_records_to_json`]).
pub fn persist_records_to_json(meta: &RunMeta, records: &[PersistRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"persist_warm_start\",\n");
    out.push_str("  \"unit\": \"ns\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"threads\": {}, \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.threads, meta.par_cutoff
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {}, \"k\": {}, \"ops\": {}, \"live_edges\": {}, \"checkpoint_bytes\": {}, \"checkpoint_ns\": {}, \"restore_ns\": {}, \"cold_rebuild_ns\": {}, \"restore_speedup\": {:.2}}}{}\n",
            r.scenario,
            r.n,
            r.k,
            r.ops,
            r.live_edges,
            r.checkpoint_bytes,
            r.checkpoint_ns,
            r.restore_ns,
            r.cold_rebuild_ns,
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Intra-batch grouped-apply records (BENCH_intra_batch.json)
// ---------------------------------------------------------------------

/// One measured (path, n, batch size) cell of the E6 intra-batch
/// parallelism benchmark: a component-partitioned engine applying its
/// conflict-free update groups concurrently (`"grouped"`) vs the same
/// engine forced to arrival-order serial apply (`"serial"`). Each record
/// carries its **own** pool width — `PDMSF_POOL_THREADS` is read once per
/// process, so the committed artifact merges records from one run per
/// width and `threads` is per-record, not run-level.
#[derive(Clone, Debug)]
pub struct IntraBatchRecord {
    /// Apply path: `"grouped"` / `"serial"` on the clustered stream
    /// (conflict-colored concurrent apply vs forced arrival-order apply),
    /// `"adaptive"` / `"static"` on the migration stream (default
    /// post-batch rebalancing vs rebalancing disabled).
    pub path: String,
    /// Workload: `"clustered"` ([`clustered_mix_batch_stream`]) or
    /// `"migration"` ([`migration_churn_batch_stream`]).
    pub stream: String,
    /// Number of vertices.
    pub n: usize,
    /// Partition count of the component-partitioned structure.
    pub partitions: usize,
    /// Pool width this record ran under (workers + caller).
    pub threads: usize,
    /// Operations per batch.
    pub batch_size: usize,
    /// Number of timed batches.
    pub batches: usize,
    /// Total timed operations (updates + queries).
    pub ops: usize,
    /// Update groups the grouped path dispatched (0 on the serial path).
    pub update_groups: u64,
    /// Surviving updates that shared a group (0 on the serial path).
    pub group_conflicts: u64,
    /// Component migrations over the run (cross-partition links plus
    /// rebalance moves).
    pub migrations: u64,
    /// Post-batch rebalance passes that moved a component (always 0 on
    /// the `"static"` path).
    pub rebalances: u64,
    /// Wall-clock nanoseconds spent inside the timed batches.
    pub elapsed_ns: u128,
}

impl IntraBatchRecord {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Serialize intra-batch grouped-apply records as JSON (hand-rolled for
/// the same reason as [`bench_records_to_json`]; `threads` is stamped per
/// record, see [`IntraBatchRecord::threads`]).
pub fn intra_batch_records_to_json(meta: &RunMeta, records: &[IntraBatchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"intra_batch\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"par_cutoff\": {}}},\n",
        meta.git_sha, meta.par_cutoff
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"stream\": \"{}\", \"n\": {}, \"partitions\": {}, \"threads\": {}, \"batch_size\": {}, \"batches\": {}, \"ops\": {}, \"update_groups\": {}, \"group_conflicts\": {}, \"migrations\": {}, \"rebalances\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.2}}}{}\n",
            r.path,
            r.stream,
            r.n,
            r.partitions,
            r.threads,
            r.batch_size,
            r.batches,
            r.ops,
            r.update_groups,
            r.group_conflicts,
            r.migrations,
            r.rebalances,
            r.elapsed_ns,
            r.ops_per_sec(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmsf_baselines::NaiveDynamicMsf;

    #[test]
    fn bench_json_is_well_formed() {
        let records = vec![
            BenchRecord {
                structure: "arena-seq".into(),
                stream: "mixed".into(),
                n: 1000,
                k: 100,
                exec: "simulated",
                ops: 500,
                elapsed_ns: 2_000_000,
            },
            BenchRecord {
                structure: "map-seq".into(),
                stream: "mixed".into(),
                n: 1000,
                k: 100,
                exec: "simulated",
                ops: 500,
                elapsed_ns: 4_000_000,
            },
        ];
        let meta = RunMeta {
            git_sha: "deadbeef".into(),
            threads: 4,
            par_cutoff: 512,
        };
        let json = bench_records_to_json("update_time", &meta, &records);
        assert!(json.contains("\"benchmark\": \"update_time\""));
        assert!(json.contains("\"structure\": \"arena-seq\""));
        assert!(json.contains("\"ops_per_sec\": 250000.00"));
        assert!(json.contains("\"git_sha\": \"deadbeef\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"par_cutoff\": 512"));
        assert!(json.contains("\"k\": 100"));
        assert!(json.contains("\"exec\": \"simulated\""));
        // Exactly one separating comma between the two records (meta is an
        // inline object, not a record).
        assert_eq!(json.matches("},\n").count(), 2);
        assert_eq!(records[0].ops_per_sec(), 250_000.0);
    }

    #[test]
    fn batch_json_is_well_formed() {
        let records = vec![
            BatchRecord {
                path: "batched".into(),
                stream: "bursty".into(),
                n: 1000,
                k: 32,
                exec: "threads",
                batch_size: 256,
                batches: 8,
                ops: 2048,
                elapsed_ns: 1_024_000,
            },
            BatchRecord {
                path: "one-by-one".into(),
                stream: "bursty".into(),
                n: 1000,
                k: 32,
                exec: "threads",
                batch_size: 256,
                batches: 8,
                ops: 2048,
                elapsed_ns: 2_048_000,
            },
        ];
        let meta = RunMeta {
            git_sha: "deadbeef".into(),
            threads: 4,
            par_cutoff: 512,
        };
        let json = batch_records_to_json(&meta, &records);
        assert!(json.contains("\"benchmark\": \"batch_throughput\""));
        assert!(json.contains("\"path\": \"batched\""));
        assert!(json.contains("\"path\": \"one-by-one\""));
        assert!(json.contains("\"batch_size\": 256"));
        assert!(json.contains("\"ops_per_sec\": 2000000.00"));
        assert!(json.contains("\"git_sha\": \"deadbeef\""));
        assert_eq!(json.matches("},\n").count(), 2);
        assert_eq!(records[0].ops_per_sec(), 2_000_000.0);
    }

    #[test]
    fn engine_drivers_agree_on_the_final_forest() {
        let stream = bursty_batch_stream(64, 128, 6, 24, 3);
        let mut batched = Engine::new(64);
        let mut serial = Engine::new(64);
        let (_, ops_a) = drive_engine_batched(&mut batched, &stream);
        let (_, ops_b) = drive_engine_one_by_one(&mut serial, &stream);
        assert_eq!(ops_a, stream.total_ops());
        assert_eq!(ops_a, ops_b);
        assert_eq!(batched.forest_edges(), serial.forest_edges());
        assert_eq!(batched.forest_weight(), serial.forest_weight());
        // The bursty stream actually exercised the batch leverage.
        assert!(batched.stats().cancelled_pairs > 0);
    }

    #[test]
    fn shard_json_is_well_formed() {
        let records = vec![
            ShardRecord {
                path: "sharded".into(),
                shards: 4,
                tenants: 16,
                tenant_n: 256,
                total_n: 4096,
                zipf_permille: 900,
                batch_size: 512,
                batches: 8,
                ops: 4096,
                elapsed_ns: 2_048_000,
                pool_jobs: 12,
                pool_shards: 40,
                pool_inline: 3,
                pool_chunks: 18,
                pool_steals: 5,
            },
            ShardRecord {
                path: "flat-merged".into(),
                shards: 1,
                tenants: 16,
                tenant_n: 256,
                total_n: 4096,
                zipf_permille: 900,
                batch_size: 512,
                batches: 8,
                ops: 4096,
                elapsed_ns: 4_096_000,
                pool_jobs: 0,
                pool_shards: 0,
                pool_inline: 8,
                pool_chunks: 0,
                pool_steals: 0,
            },
        ];
        let meta = RunMeta {
            git_sha: "deadbeef".into(),
            threads: 4,
            par_cutoff: 512,
        };
        let json = shard_records_to_json(&meta, &records);
        assert!(json.contains("\"benchmark\": \"shard_throughput\""));
        assert!(json.contains("\"path\": \"sharded\""));
        assert!(json.contains("\"path\": \"flat-merged\""));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"zipf_permille\": 900"));
        assert!(json.contains("\"ops_per_sec\": 2000000.00"));
        assert!(json.contains("\"pool_jobs\": 12"));
        assert!(json.contains("\"pool_chunks\": 18"));
        assert!(json.contains("\"pool_steals\": 5"));
        assert_eq!(json.matches("},\n").count(), 2);
        assert_eq!(records[0].ops_per_sec(), 2_000_000.0);
    }

    #[test]
    fn sched_json_is_well_formed() {
        let records = vec![
            SchedRecord {
                scenario: "many-small".into(),
                submitters: 4,
                jobs: 64,
                shards_per_job: 8,
                depth: 1,
                ops: 2048,
                elapsed_ns: 1_024_000,
                pool_jobs: 256,
                pool_shards: 2048,
                pool_inline: 0,
                pool_chunks: 512,
                pool_steals: 31,
            },
            SchedRecord {
                scenario: "nested".into(),
                submitters: 2,
                jobs: 16,
                shards_per_job: 4,
                depth: 2,
                ops: 512,
                elapsed_ns: 2_048_000,
                pool_jobs: 160,
                pool_shards: 640,
                pool_inline: 0,
                pool_chunks: 200,
                pool_steals: 7,
            },
        ];
        let meta = RunMeta {
            git_sha: "deadbeef".into(),
            threads: 4,
            par_cutoff: 512,
        };
        let json = sched_records_to_json(&meta, &records);
        assert!(json.contains("\"benchmark\": \"sched_throughput\""));
        assert!(json.contains("\"scenario\": \"many-small\""));
        assert!(json.contains("\"depth\": 2"));
        assert!(json.contains("\"ops_per_sec\": 2000000.00"));
        assert!(json.contains("\"pool_steals\": 31"));
        assert_eq!(json.matches("},\n").count(), 2);
        assert_eq!(records[0].ops_per_sec(), 2_000_000.0);
    }

    #[test]
    fn sharded_and_flat_drivers_agree_on_total_weight() {
        use pdmsf_graph::TenantId;
        use pdmsf_shard::TenantSpec;
        let stream = tenant_stream(4, 32, 5, 48, 800, 9);
        let specs: Vec<TenantSpec> = (0..4).map(|t| TenantSpec::new(TenantId(t), 32)).collect();
        let mut sharded = ShardedService::new(2, &specs);
        let mut flat = MergedTenantEngine::new(4, 32);
        let (_, ops_a) = drive_service_sharded(&mut sharded, &stream);
        let (_, ops_b) = drive_service_flat(&mut flat, &stream);
        assert_eq!(ops_a, stream.total_ops());
        assert_eq!(ops_a, ops_b);
        assert_eq!(sharded.total_forest_weight(), flat.engine().forest_weight());
    }

    #[test]
    fn intra_batch_json_is_well_formed() {
        let records = vec![
            IntraBatchRecord {
                path: "grouped".into(),
                stream: "clustered".into(),
                n: 4096,
                partitions: 8,
                threads: 4,
                batch_size: 256,
                batches: 16,
                ops: 4096,
                update_groups: 96,
                group_conflicts: 12,
                migrations: 0,
                rebalances: 0,
                elapsed_ns: 1_000_000,
            },
            IntraBatchRecord {
                path: "serial".into(),
                stream: "clustered".into(),
                n: 4096,
                partitions: 8,
                threads: 1,
                batch_size: 256,
                batches: 16,
                ops: 4096,
                update_groups: 0,
                group_conflicts: 0,
                migrations: 0,
                rebalances: 0,
                elapsed_ns: 2_000_000,
            },
            IntraBatchRecord {
                path: "adaptive".into(),
                stream: "migration".into(),
                n: 4096,
                partitions: 8,
                threads: 4,
                batch_size: 256,
                batches: 16,
                ops: 4096,
                update_groups: 80,
                group_conflicts: 4,
                migrations: 42,
                rebalances: 5,
                elapsed_ns: 1_500_000,
            },
        ];
        let meta = RunMeta {
            git_sha: "deadbeef".into(),
            threads: 4,
            par_cutoff: 512,
        };
        let json = intra_batch_records_to_json(&meta, &records);
        assert!(json.contains("\"benchmark\": \"intra_batch\""));
        assert!(json.contains("\"path\": \"grouped\""));
        assert!(json.contains("\"stream\": \"clustered\""));
        assert!(json.contains("\"stream\": \"migration\""));
        assert!(json.contains("\"update_groups\": 96"));
        assert!(json.contains("\"migrations\": 42"));
        assert!(json.contains("\"rebalances\": 5"));
        // Threads is per-record (merged multi-width artifact), not run-level.
        assert!(json.contains("\"threads\": 1") && json.contains("\"threads\": 4"));
        assert_eq!(records[0].ops_per_sec(), 4_096_000_000.0 / 1_000.0);
        assert_eq!(json.matches("},\n").count(), 3);
    }

    #[test]
    fn migration_churn_stream_piles_up_and_rebalances() {
        use pdmsf_engine::Engine;
        let n = 256;
        let blocks = 4;
        let stream = migration_churn_batch_stream(n, 7, 64, blocks, 3, 97);
        assert_eq!(stream.batches.len(), 8); // build + 7 cycling

        // Adaptive (default) vs static (rebalance off): identical forests,
        // but only adaptive ever rebalances.
        let mut adaptive = Engine::new_partitioned(n, blocks);
        let mut static_e = Engine::new_partitioned(n, blocks);
        static_e.set_rebalance(false);
        for batch in &stream.batches {
            adaptive.execute(batch);
            static_e.execute(batch);
        }
        assert_eq!(adaptive.forest_weight(), static_e.forest_weight());
        assert_eq!(adaptive.forest_edges(), static_e.forest_edges());
        adaptive.validate_structure();
        static_e.validate_structure();
        let (a, s) = (adaptive.stats(), static_e.stats());
        assert!(a.migrations > 0, "bridges must force migrations");
        assert!(a.rebalances > 0, "cut batches must trigger rebalances");
        assert_eq!(s.rebalances, 0);
        // The static engine stays collapsed: every component homed in one
        // partition, so the cut batch leaves occupancy concentrated.
        let occ = static_e
            .partitioned_structure()
            .expect("partitioned engine")
            .occupancy()
            .to_vec();
        let total: u64 = occ.iter().sum();
        assert!(
            occ.iter().any(|&o| o * 2 > total),
            "static homes should stay concentrated, occupancy {occ:?}"
        );
    }

    #[test]
    fn run_meta_collects_plausible_values() {
        let meta = RunMeta::collect();
        assert!(meta.threads >= 1);
        assert_eq!(meta.par_cutoff, pdmsf_pram::kernels::PAR_CUTOFF);
        assert!(!meta.git_sha.is_empty());
    }

    #[test]
    fn drivers_produce_consistent_forests() {
        let stream = mixed_stream(24, 48, 100, 5);
        let mut a = SeqDynamicMsf::new(24);
        let mut b = NaiveDynamicMsf::new(24);
        drive(&mut a, &stream);
        drive(&mut b, &stream);
        assert_eq!(a.forest_edges(), b.forest_edges());
    }

    #[test]
    fn pram_profile_reports_costs() {
        let run = pram_profile(128, 100, 3);
        assert!(run.worst.depth > 0);
        assert!(run.mean_work > 0.0);
        assert!(run.peak_processors > 0);
        assert_eq!(run.n, 128);
    }
}
