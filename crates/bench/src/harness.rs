//! A minimal, dependency-free benchmark harness.
//!
//! The original Criterion benches under `benches/` could not build offline
//! (no registry access for the `criterion` crate), so this module provides
//! the small subset the suite actually uses: named groups, named benches,
//! N timed samples after one warm-up run, and a min / median / mean report.
//! Medians are what the suite compares across PRs — wall-clock on shared
//! machines is noisy and the median is robust to scheduling spikes.
//!
//! Sample count defaults to 10 and can be overridden with the
//! `PDMSF_BENCH_SAMPLES` environment variable (CI smoke runs use 1).

use std::time::{Duration, Instant};

/// Format a duration compactly for the report table.
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// The measured samples of one bench, sorted ascending.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Bench id within its group.
    pub id: String,
    /// Sorted sample durations.
    pub samples: Vec<Duration>,
}

impl BenchResult {
    /// Median sample (the cross-PR comparison statistic).
    pub fn median(&self) -> Duration {
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of benches, printed as one table.
pub struct BenchGroup {
    samples: usize,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Start a group with the sample count taken from `PDMSF_BENCH_SAMPLES`
    /// (default 10). Prints the table header immediately so progress is
    /// visible while long benches run.
    pub fn new(name: &str) -> Self {
        let samples = std::env::var("PDMSF_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Self::with_samples(name, samples)
    }

    /// Start a group with an explicit sample count (clamped to ≥ 1).
    pub fn with_samples(name: &str, samples: usize) -> Self {
        let samples = samples.max(1);
        println!("\n== {name} ({samples} samples per bench, 1 warm-up) ==");
        println!(
            "{:>40} {:>10} {:>10} {:>10}",
            "bench", "min", "median", "mean"
        );
        BenchGroup {
            samples,
            results: Vec::new(),
        }
    }

    /// Time `f` (`samples` runs after one warm-up) and print its table row.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        let min = times[0];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let result = BenchResult {
            id: id.to_string(),
            samples: times,
        };
        println!(
            "{:>40} {:>10} {:>10} {:>10}",
            result.id,
            fmt(min),
            fmt(result.median()),
            fmt(mean)
        );
        self.results.push(result);
    }

    /// The results measured so far, in bench order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_sorted_samples_and_median() {
        let mut g = BenchGroup::with_samples("harness-self-test", 7);
        let mut runs = 0u32;
        g.bench("spin", || {
            runs += 1;
            std::hint::black_box((0..100).sum::<u64>())
        });
        // 1 warm-up + `samples` timed runs.
        assert_eq!(runs, 7 + 1);
        let r = &g.results()[0];
        assert_eq!(r.id, "spin");
        assert_eq!(r.samples.len(), 7);
        assert!(r.samples.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.median() >= r.samples[0]);
    }

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt(Duration::from_micros(250)), "250.0µs");
        assert_eq!(fmt(Duration::from_millis(42)), "42.0ms");
        assert_eq!(fmt(Duration::from_secs(12)), "12.00s");
    }
}
