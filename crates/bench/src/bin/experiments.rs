//! Experiment driver: prints the evaluation tables (E0–E13) and writes the
//! machine-readable benchmark JSON artifacts.
//!
//! Usage:
//! ```text
//! cargo run --release -p pdmsf-bench --bin experiments            # all experiments
//! cargo run --release -p pdmsf-bench --bin experiments -- e2 e6   # a selection
//! cargo run --release -p pdmsf-bench --bin experiments -- quick   # smaller sizes
//! ```
//!
//! The machine-readable experiments also write JSON artifacts: E0 emits
//! `BENCH_update_time.json` (per-update throughput; `gate` adds the CI
//! regression gate), E1 emits `BENCH_batch_throughput.json` (batched vs
//! one-op-at-a-time engine paths over bursty/clustered batch streams),
//! E2 emits `BENCH_shard_throughput.json` (sharded multi-tenant service vs
//! one flat merged engine, across shard counts and tenant skews), E3
//! emits `BENCH_sched_throughput.json` (the work-stealing scheduler under
//! many-small-jobs workloads, steal/claim counters stamped per record),
//! E5 emits `BENCH_persist.json` (checkpoint size, checkpoint/restore wall
//! time vs cold rebuild — the persistence warm-start story) and E6 emits
//! `BENCH_intra_batch.json` (grouped concurrent apply on a
//! component-partitioned engine vs forced serial apply; run once per
//! `PDMSF_POOL_THREADS` width and merge — the pool width is read once per
//! process, so one run cannot sweep it).
//!
//! E4 emits `BENCH_serve_latency.json`: the **closed-loop serve-latency
//! ramp** — offered load on a sharded service climbs round by round
//! (`initial_rps` + k·`increment_rps`) under virtual arrival pacing,
//! per-op and per-batch latencies flow through `pdmsf-obs` histograms,
//! and the headline is the knee point: the highest offered rps whose
//! round still met the p95 SLO (see `pdmsf_bench::serve`). E4 used to
//! alias the legacy PRAM-scaling tables, which live at `e11`; the legacy
//! density sweep that held `e6` before the intra-batch benchmark took
//! that slot is now `e13` (renumbered like E10–E12 before it).

use pdmsf_baselines::{NaiveDynamicMsf, RecomputeMsf};
use pdmsf_bench::serve::{
    drive_serve_ramp, knee_point, serve_records_to_json, RampConfig, ServeScenario,
};
use pdmsf_bench::{
    batch_records_to_json, bench_records_to_json, bursty_batch_stream, clustered_batch_stream,
    clustered_mix_batch_stream, drive, drive_engine_batched, drive_engine_one_by_one,
    drive_service_flat, drive_service_sharded, drive_updates_only, failure_stream, grid_stream,
    insert_stream, intra_batch_records_to_json, migration_churn_batch_stream, mixed_stream,
    persist_records_to_json, pram_profile, sched_records_to_json, seq_mean_update_time,
    shard_records_to_json, tenant_stream, BatchRecord, BenchRecord, IntraBatchRecord,
    MergedTenantEngine, PersistRecord, RunMeta, SchedRecord, ShardRecord,
};
use pdmsf_core::{
    seq::default_sequential_k, MapSeqDynamicMsf, ParDynamicMsf, SeqDynamicMsf, SparsifiedMsf,
};
use pdmsf_engine::{Engine, Op};
use pdmsf_graph::{DynamicMsf, TenantId, UpdateStream};
use pdmsf_persist::{EngineCheckpointExt, ServiceCheckpointExt};
use pdmsf_pram::{erew_tournament_min, par_min_index, pool, AccessLog, CostMeter};
use pdmsf_shard::{ShardedService, TenantSpec};
use std::time::{Duration, Instant};

fn micros(d: Duration, ops: usize) -> f64 {
    if ops == 0 {
        0.0
    } else {
        d.as_secs_f64() * 1e6 / ops as f64
    }
}

/// Median of a non-empty rate sample (upper median; sorts in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    xs[xs.len() / 2]
}

struct Config {
    sizes: Vec<usize>,
    ops: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let quick = args.iter().any(|a| a == "quick");
    let gate = args.iter().any(|a| a == "gate");
    let config = if quick {
        Config {
            sizes: vec![1 << 8, 1 << 10, 1 << 12],
            ops: 400,
        }
    } else {
        Config {
            sizes: vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16],
            ops: 1_500,
        }
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with('e'))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    if want("e0") {
        e0_bench_json(quick, gate);
    }
    if want("e1") {
        e1_batch_throughput(quick);
    }
    if want("e2") {
        e2_shard_throughput(quick);
    }
    if want("e3") {
        e3_sched_throughput(quick);
    }
    if want("e4") {
        e4_serve_latency(quick);
    }
    if want("e11") {
        e11_pram_scaling(&config);
    }
    if want("e5") {
        e5_persist(&config);
    }
    if want("e6") {
        e6_intra_batch(quick);
    }
    if want("e7") {
        e7_kernels();
    }
    if want("e8") {
        e8_chunk_size(&config);
    }
    if want("e9") {
        e9_mwr_cost(&config);
    }
    if want("e10") {
        e10_seq_update_time(&config);
    }
    if want("e12") {
        e12_workloads(&config);
    }
    if want("e13") {
        e13_sparsification(&config);
    }
}

/// E0: the machine-readable update-time benchmark — ops/sec for insert-only,
/// delete-only and mixed streams at n ∈ {1e3, 1e4, 1e5}, for the arena-backed
/// structure, the map-backed bookkeeping baseline and the thread-executing
/// parallel structure. Emits `BENCH_update_time.json` (stamped with git SHA,
/// `K`, pool width and execution mode) so every future change has an
/// attributable trajectory to beat.
///
/// With `gate`, the mixed stream is measured five times per structure (a
/// single rep's ratio can swing ±20% on a noisy shared runner; the median
/// of five is stable) and the run **fails** (non-zero exit) unless the
/// arena structure's median stays at least 1.5× the map baseline's median
/// at the largest mixed size — the CI bench-smoke regression gate (see
/// [`gate_mixed_ratio`]).
fn e0_bench_json(quick: bool, gate: bool) {
    println!("\n== E0: update-time benchmark (writes BENCH_update_time.json) ==");
    println!("structures: arena-seq (flat bookkeeping on the SoA chunk banks), map-seq");
    println!("(the seed's keyed-map bookkeeping and refresh policies, kept for");
    println!("comparison), par-threads (EREW structure executing kernels on the pool)");
    // The headline comparison (and acceptance gate) is the mixed stream at
    // n = 1e5; the insert/delete streams stop a decade earlier by default to
    // keep the full run under a few minutes (the seed baseline's base-graph
    // build dominates).
    let (sizes_mixed, sizes_rest): (&[usize], &[usize]) = if quick {
        (&[1_000, 10_000], &[1_000, 10_000])
    } else {
        (&[1_000, 10_000, 100_000], &[1_000, 10_000])
    };
    let ops = 2_000usize;
    type StreamMaker = fn(usize, usize) -> UpdateStream;
    let streams: [(&str, &[usize], StreamMaker); 3] = [
        ("insert", sizes_rest, |n, ops| {
            insert_stream(n, 2 * n, ops, 71)
        }),
        ("delete", sizes_rest, |n, ops| {
            // Failure streams generate one delete per base edge; size the
            // base graph to cover the requested op count, then truncate so
            // every stream times exactly `ops` operations.
            let mut stream = failure_stream(n, (2 * n).max(ops), 72);
            stream.ops.truncate(ops);
            stream
        }),
        ("mixed", sizes_mixed, |n, ops| {
            mixed_stream(n, 2 * n, ops, 73)
        }),
    ];
    let mut records: Vec<BenchRecord> = Vec::new();
    // Median mixed-stream ops/sec per (structure, n), for the gate.
    let mut mixed_medians: Vec<(String, usize, f64)> = Vec::new();
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>10}",
        "stream", "n", "arena (op/s)", "map (op/s)", "par-thr (op/s)", "arena/map"
    );
    for (stream_name, sizes, make) in streams {
        // The gate compares medians, so gated mixed cells get repetitions.
        let reps = if gate && stream_name == "mixed" { 5 } else { 1 };
        for &n in sizes {
            let stream = make(n, ops);
            let mut rates: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for _ in 0..reps {
                let mut run =
                    |structure: &str, k: usize, exec: &'static str, t: Duration, o: usize| {
                        records.push(BenchRecord {
                            structure: structure.to_string(),
                            stream: stream_name.to_string(),
                            n,
                            k,
                            exec,
                            ops: o,
                            elapsed_ns: t.as_nanos(),
                        });
                        records.last().unwrap().ops_per_sec()
                    };
                let mut arena = SeqDynamicMsf::new(n);
                let (t_arena, o_arena) = drive_updates_only(&mut arena, &stream);
                rates[0].push(run(
                    "arena-seq",
                    arena.chunk_parameter(),
                    "simulated",
                    t_arena,
                    o_arena,
                ));

                let mut map = MapSeqDynamicMsf::new(n);
                let (t_map, o_map) = drive_updates_only(&mut map, &stream);
                rates[1].push(run(
                    "map-seq",
                    map.chunk_parameter(),
                    "simulated",
                    t_map,
                    o_map,
                ));

                let mut par = ParDynamicMsf::new_threaded(n);
                let (t_par, o_par) = drive_updates_only(&mut par, &stream);
                rates[2].push(run(
                    "par-threads",
                    par.chunk_parameter(),
                    "threads",
                    t_par,
                    o_par,
                ));

                // The three structures must agree — this benchmark doubles as
                // a large-n differential test.
                assert_eq!(arena.forest_weight(), map.forest_weight());
                assert_eq!(arena.forest_weight(), par.forest_weight());
            }
            let m_arena = median(&mut rates[0]);
            let m_map = median(&mut rates[1]);
            let m_par = median(&mut rates[2]);
            if stream_name == "mixed" {
                mixed_medians.push(("arena-seq".into(), n, m_arena));
                mixed_medians.push(("map-seq".into(), n, m_map));
            }
            println!(
                "{:>8} {:>8} {:>14.0} {:>14.0} {:>14.0} {:>9.2}x",
                stream_name,
                n,
                m_arena,
                m_map,
                m_par,
                if m_map > 0.0 { m_arena / m_map } else { 0.0 }
            );
        }
    }
    let meta = RunMeta::collect();
    let json = bench_records_to_json("update_time", &meta, &records);
    let path = "BENCH_update_time.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "wrote {path} ({} records, git {}, {} pool thread(s))",
        records.len(),
        meta.git_sha,
        meta.threads
    );
    if gate {
        gate_mixed_ratio(&mixed_medians);
    }
}

/// The CI regression gate: at the **largest** mixed size of the run, the
/// arena structure's median throughput must be ≥ 1.5× the map baseline's
/// median. The largest size is the asymptotic regime the ROADMAP target is
/// stated for (the actual margin there is around 1.8–2×, so 1.5× triggers on
/// real regressions, not machine noise); small-n ratios are dominated by
/// constant factors and sit just below 1.5× by design, so they are printed
/// but not gated.
fn gate_mixed_ratio(mixed_medians: &[(String, usize, f64)]) {
    const MIN_RATIO: f64 = 1.5;
    let gated_n = mixed_medians
        .iter()
        .map(|(_, n, _)| *n)
        .max()
        .expect("gate mode measured at least one mixed size");
    let mut failed = false;
    println!("\n-- bench-smoke gate: arena-seq vs map-seq medians (mixed stream) --");
    for (structure, n, arena_rate) in mixed_medians {
        if structure != "arena-seq" {
            continue;
        }
        let map_rate = mixed_medians
            .iter()
            .find(|(s, m, _)| s == "map-seq" && m == n)
            .map(|(_, _, r)| *r)
            .expect("map baseline measured for every mixed size");
        let ratio = if map_rate > 0.0 {
            arena_rate / map_rate
        } else {
            f64::INFINITY
        };
        if *n != gated_n {
            println!("n = {n:>7}: arena/map = {ratio:.2}x (informational)");
            continue;
        }
        let ok = ratio >= MIN_RATIO;
        println!(
            "n = {n:>7}: arena/map = {ratio:.2}x (gate: >= {MIN_RATIO}x) {}",
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!("bench-smoke gate FAILED: arena structure regressed against the map baseline");
        std::process::exit(1);
    }
    println!("bench-smoke gate passed");
}

/// E1: batch-engine throughput — the batched path (preprocessing,
/// cancellation, query snapshot + pooled fan-out) vs the one-op-at-a-time
/// engine path on identical bursty and tenant-clustered batch streams.
/// Emits `BENCH_batch_throughput.json` with the same run-metadata stamping
/// as E0. The ROADMAP acceptance bar: batched ≥ 1.3× one-by-one on the
/// mixed (bursty) stream at the largest measured batch size, comparing
/// medians.
fn e1_batch_throughput(quick: bool) {
    println!("\n== E1: batch engine throughput (writes BENCH_batch_throughput.json) ==");
    println!("paths: batched (plan + cancel + dedup + snapshot fan-out) vs one-by-one");
    println!("(same ops through the same structure, no batch leverage); identical");
    println!("outcomes, so the ratio is pure batching leverage");
    let (sizes, batch_sizes, total_ops, reps): (&[usize], &[usize], usize, usize) = if quick {
        (&[1_000], &[32, 256], 2_048, 1)
    } else {
        (&[1_000, 10_000], &[16, 64, 256, 1_024], 8_192, 3)
    };
    type StreamMaker = fn(usize, usize, usize, usize, u64) -> pdmsf_graph::BatchStream;
    let streams: [(&str, StreamMaker); 2] = [
        ("bursty", bursty_batch_stream),
        ("clustered", clustered_batch_stream),
    ];
    let mut records: Vec<BatchRecord> = Vec::new();
    println!(
        "{:>10} {:>8} {:>7} {:>16} {:>16} {:>12}",
        "stream", "n", "batch", "batched (op/s)", "1-by-1 (op/s)", "batched/1x1"
    );
    for (stream_name, make) in streams {
        for &n in sizes {
            for &batch_size in batch_sizes {
                let batches = (total_ops / batch_size).max(1);
                let stream = make(n, 2 * n, batches, batch_size, 81);
                let mut rates: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
                for _ in 0..reps {
                    let mut run = |path: &str, engine: &Engine, t: Duration, ops: usize| -> f64 {
                        records.push(BatchRecord {
                            path: path.to_string(),
                            stream: stream_name.to_string(),
                            n,
                            k: engine.structure().chunk_parameter(),
                            exec: "threads",
                            batch_size,
                            batches,
                            ops,
                            elapsed_ns: t.as_nanos(),
                        });
                        records.last().unwrap().ops_per_sec()
                    };
                    let mut batched = Engine::new(n);
                    let (t_b, ops_b) = drive_engine_batched(&mut batched, &stream);
                    rates[0].push(run("batched", &batched, t_b, ops_b));

                    let mut serial = Engine::new(n);
                    let (t_s, ops_s) = drive_engine_one_by_one(&mut serial, &stream);
                    rates[1].push(run("one-by-one", &serial, t_s, ops_s));

                    // The two paths must agree — this benchmark doubles as a
                    // large-n differential test of the batch semantics.
                    assert_eq!(batched.forest_weight(), serial.forest_weight());
                    assert_eq!(batched.forest_edges(), serial.forest_edges());
                }
                let m_batched = median(&mut rates[0]);
                let m_serial = median(&mut rates[1]);
                println!(
                    "{:>10} {:>8} {:>7} {:>16.0} {:>16.0} {:>11.2}x",
                    stream_name,
                    n,
                    batch_size,
                    m_batched,
                    m_serial,
                    if m_serial > 0.0 {
                        m_batched / m_serial
                    } else {
                        0.0
                    }
                );
            }
        }
    }
    let meta = RunMeta::collect();
    let json = batch_records_to_json(&meta, &records);
    let path = "BENCH_batch_throughput.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "wrote {path} ({} records, git {}, {} pool thread(s))",
        records.len(),
        meta.git_sha,
        meta.threads
    );
}

/// E2: sharded-service throughput — the multi-tenant sharded service
/// (tenant routing, per-shard planning, concurrent shard application on
/// the pool injector) vs one flat single-`Engine` over the merged vertex
/// space, on identical tenant-tagged streams, across shard counts and
/// tenant popularity skews. Emits `BENCH_shard_throughput.json`, each
/// record stamped with the pool-stats delta of its timed region on top of
/// the usual run metadata.
///
/// The ROADMAP acceptance bar: sharded with ≥ 4 shards ≥ 1.2× the flat
/// merged engine (median ops/sec) at the largest quick size on the skewed
/// stream. The win has two independent sources — each shard holds
/// `n_shard << n_total` vertices, so the `O(sqrt(n) log n)` updates and
/// the `O(n)` query snapshots are cheaper *per core*; and shard batches
/// run concurrently when cores exist — so the bar holds on one core too.
fn e2_shard_throughput(quick: bool) {
    println!("\n== E2: sharded service throughput (writes BENCH_shard_throughput.json) ==");
    println!("paths: sharded (tenant routing + per-shard plan + concurrent shard jobs)");
    println!("vs flat-merged (one engine over the merged vertex space); identical");
    println!("streams and final forests, so the ratio is pure sharding leverage");
    let (sizes, shard_counts, total_ops, reps): (&[(usize, usize)], &[usize], usize, usize) =
        if quick {
            (&[(16, 256), (16, 512)], &[1, 2, 4, 8], 4_096, 1)
        } else {
            (
                &[(16, 256), (16, 512), (32, 512), (16, 1_024)],
                &[1, 2, 4, 8],
                8_192,
                3,
            )
        };
    let batch_size = 512usize;
    let skews: &[(&str, u32)] = &[("skewed", 900), ("uniform", 0)];
    let mut records: Vec<ShardRecord> = Vec::new();
    println!(
        "{:>8} {:>8} {:>8} {:>7} {:>16} {:>14}",
        "stream", "total_n", "tenants", "shards", "ops/s (median)", "vs flat"
    );
    for &(tenants, tenant_n) in sizes {
        let total_n = tenants * tenant_n;
        for &(skew_name, zipf) in skews {
            let batches = (total_ops / batch_size).max(1);
            let stream = tenant_stream(tenants, tenant_n, batches, batch_size, zipf, 91);
            let specs: Vec<TenantSpec> = (0..tenants)
                .map(|t| TenantSpec::new(TenantId(t as u32), tenant_n))
                .collect();
            // The flat merged baseline first; shard counts ride against it.
            // Its final forest weight is the differential reference every
            // sharded run below is checked against.
            let mut flat_rates: Vec<f64> = Vec::new();
            let mut flat_weight = 0i128;
            for _ in 0..reps {
                let mut flat = MergedTenantEngine::new(tenants, tenant_n);
                let snap = pool::snapshot();
                let (t, ops) = drive_service_flat(&mut flat, &stream);
                let delta = snap.delta();
                flat_weight = flat.engine().forest_weight();
                records.push(ShardRecord {
                    path: "flat-merged".into(),
                    shards: 1,
                    tenants,
                    tenant_n,
                    total_n,
                    zipf_permille: zipf,
                    batch_size,
                    batches,
                    ops,
                    elapsed_ns: t.as_nanos(),
                    pool_jobs: delta.jobs_run,
                    pool_shards: delta.shards_executed,
                    pool_inline: delta.inline_runs,
                    pool_chunks: delta.chunks_claimed,
                    pool_steals: delta.steals,
                });
                flat_rates.push(records.last().unwrap().ops_per_sec());
            }
            let m_flat = median(&mut flat_rates);
            println!(
                "{:>8} {:>8} {:>8} {:>7} {:>16.0} {:>13.2}x",
                skew_name, total_n, tenants, "flat", m_flat, 1.0
            );
            for &shards in shard_counts {
                let mut rates: Vec<f64> = Vec::new();
                for _ in 0..reps {
                    let mut service = ShardedService::new(shards, &specs);
                    let snap = pool::snapshot();
                    let (t, ops) = drive_service_sharded(&mut service, &stream);
                    let delta = snap.delta();
                    records.push(ShardRecord {
                        path: "sharded".into(),
                        shards,
                        tenants,
                        tenant_n,
                        total_n,
                        zipf_permille: zipf,
                        batch_size,
                        batches,
                        ops,
                        elapsed_ns: t.as_nanos(),
                        pool_jobs: delta.jobs_run,
                        pool_shards: delta.shards_executed,
                        pool_inline: delta.inline_runs,
                        pool_chunks: delta.chunks_claimed,
                        pool_steals: delta.steals,
                    });
                    rates.push(records.last().unwrap().ops_per_sec());
                    // The two paths must agree — this benchmark doubles as a
                    // large-n differential test of the sharded semantics.
                    assert_eq!(
                        service.total_forest_weight(),
                        flat_weight,
                        "sharded and flat-merged forests diverged"
                    );
                }
                let m = median(&mut rates);
                println!(
                    "{:>8} {:>8} {:>8} {:>7} {:>16.0} {:>13.2}x",
                    skew_name,
                    total_n,
                    tenants,
                    shards,
                    m,
                    if m_flat > 0.0 { m / m_flat } else { 0.0 }
                );
            }
        }
    }
    let meta = RunMeta::collect();
    let json = shard_records_to_json(&meta, &records);
    let path = "BENCH_shard_throughput.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "wrote {path} ({} records, git {}, {} pool thread(s))",
        records.len(),
        meta.git_sha,
        meta.threads
    );
}

/// E3: scheduler throughput — the work-stealing pool under the
/// many-small-jobs regimes the sharded service creates, measured straight
/// at the pool plus one end-to-end service scenario. Emits
/// `BENCH_sched_throughput.json`, every record stamped with the pool-stats
/// delta of its timed region (jobs, chunk claims, **steals**, inline runs)
/// so scheduler behaviour is attributable in the JSON trajectory.
///
/// Scenarios:
/// * `many-small` — several submitter threads × many tiny flat jobs
///   (many shards × small batches in service terms);
/// * `imbalanced` — shard work grows quadratically with the shard index
///   (imbalanced shard sizes; stealing is what rebalances the tail);
/// * `nested` — every outer shard submits a nested job (nested-job depth);
/// * `service-small` — the sharded service on a many-tenants × small-batch
///   tenant stream (the real dispatcher path end to end).
///
/// On a 1-core machine the global pool runs inline (steals = 0 by design —
/// the counters make that visible); concurrency behaviour needs either
/// cores or a `PDMSF_POOL_THREADS` override, and the acceptance bar is
/// "medians no worse than the committed FIFO-injector baseline", with
/// concurrency upside informational.
fn e3_sched_throughput(quick: bool) {
    println!("\n== E3: scheduler throughput (writes BENCH_sched_throughput.json) ==");
    println!("work-stealing pool under many-small-jobs scenarios; per-record pool");
    println!("deltas (chunks claimed, steals, inline runs) attribute the scheduling");
    let reps = if quick { 3 } else { 5 };
    let spin = |units: usize| {
        let mut acc = 0u64;
        for i in 0..units * 40 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            std::hint::black_box(acc);
        }
        acc
    };
    let mut records: Vec<SchedRecord> = Vec::new();
    println!(
        "{:>14} {:>6} {:>6} {:>7} {:>16} {:>8} {:>8}",
        "scenario", "thr", "jobs", "shards", "ops/s (median)", "chunks", "steals"
    );

    // Pool-level scenarios: (name, submitters, jobs/submitter, shards/job,
    // depth, per-shard work closure).
    type ShardWork = Box<dyn Fn(usize) + Sync>;
    let scenarios: Vec<(&str, usize, usize, usize, usize, ShardWork)> = vec![
        (
            "many-small",
            4,
            64,
            8,
            1,
            Box::new(move |_shard| {
                std::hint::black_box(spin(8));
            }),
        ),
        (
            "imbalanced",
            2,
            32,
            8,
            1,
            Box::new(move |shard| {
                std::hint::black_box(spin(8 * (shard + 1) * (shard + 1)));
            }),
        ),
        (
            "nested",
            2,
            16,
            4,
            2,
            Box::new(move |_outer| {
                pool::run_shards(4, |_inner| {
                    std::hint::black_box(spin(10));
                });
            }),
        ),
    ];
    for (name, submitters, jobs, shards, depth, work) in &scenarios {
        let mut rates: Vec<f64> = Vec::new();
        let mut last: Option<SchedRecord> = None;
        for _ in 0..reps {
            // Every executed shard counts as an op: in the nested scenario
            // each outer shard additionally submits a 4-shard inner job,
            // so a job executes `shards` outer + `shards * 4` leaf shards
            // (matching the pool_shards delta stamped into the record).
            let ops = submitters * jobs * shards * if *depth > 1 { 1 + 4 } else { 1 };
            let snap = pool::snapshot();
            let start = std::time::Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..*submitters {
                    scope.spawn(|| {
                        for _ in 0..*jobs {
                            pool::run_shards(*shards, &*work);
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let delta = snap.delta();
            let rec = SchedRecord {
                scenario: name.to_string(),
                submitters: *submitters,
                jobs: *jobs,
                shards_per_job: *shards,
                depth: *depth,
                ops,
                elapsed_ns: elapsed.as_nanos(),
                pool_jobs: delta.jobs_run,
                pool_shards: delta.shards_executed,
                pool_inline: delta.inline_runs,
                pool_chunks: delta.chunks_claimed,
                pool_steals: delta.steals,
            };
            rates.push(rec.ops_per_sec());
            records.push(rec.clone());
            last = Some(rec);
        }
        let last = last.expect("at least one rep ran");
        println!(
            "{:>14} {:>6} {:>6} {:>7} {:>16.0} {:>8} {:>8}",
            name,
            submitters,
            jobs,
            shards,
            median(&mut rates),
            last.pool_chunks,
            last.pool_steals
        );
    }

    // End-to-end: the sharded service on many shards × small batches.
    let (tenants, tenant_n, shards) = (16usize, 128usize, 8usize);
    let batches = if quick { 16 } else { 32 };
    let stream = tenant_stream(tenants, tenant_n, batches, 64, 700, 99);
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|t| TenantSpec::new(TenantId(t as u32), tenant_n))
        .collect();
    let mut rates: Vec<f64> = Vec::new();
    let mut last: Option<SchedRecord> = None;
    for _ in 0..reps {
        let mut service = ShardedService::new(shards, &specs);
        let snap = pool::snapshot();
        let (t, ops) = drive_service_sharded(&mut service, &stream);
        let delta = snap.delta();
        let rec = SchedRecord {
            scenario: "service-small".into(),
            submitters: 1,
            jobs: batches,
            shards_per_job: shards,
            depth: 1,
            ops,
            elapsed_ns: t.as_nanos(),
            pool_jobs: delta.jobs_run,
            pool_shards: delta.shards_executed,
            pool_inline: delta.inline_runs,
            pool_chunks: delta.chunks_claimed,
            pool_steals: delta.steals,
        };
        rates.push(rec.ops_per_sec());
        records.push(rec.clone());
        last = Some(rec);
    }
    let last = last.expect("at least one rep ran");
    println!(
        "{:>14} {:>6} {:>6} {:>7} {:>16.0} {:>8} {:>8}",
        "service-small",
        1,
        batches,
        shards,
        median(&mut rates),
        last.pool_chunks,
        last.pool_steals
    );

    let meta = RunMeta::collect();
    let json = sched_records_to_json(&meta, &records);
    let path = "BENCH_sched_throughput.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "wrote {path} ({} records, git {}, {} pool thread(s))",
        records.len(),
        meta.git_sha,
        meta.threads
    );
}

/// E10: per-update wall clock vs n — paper structure vs baselines
/// (numbered E1 before the batch engine claimed that slot).
fn e10_seq_update_time(cfg: &Config) {
    println!("\n== E10: sequential update time vs n (mixed stream, m ≈ 2n) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "n", "kpr-seq (µs)", "naive (µs)", "recompute (µs)"
    );
    for &n in &cfg.sizes {
        let stream = mixed_stream(n, 2 * n, cfg.ops, 11);
        let mut seq = SeqDynamicMsf::new(n);
        let (t_seq, ops) = drive_updates_only(&mut seq, &stream);
        // The O(m)-per-update baselines become painfully slow at large n;
        // scale their measured op-count down and extrapolate per-op cost.
        let baseline_ops = cfg.ops.min(300);
        let small_stream = mixed_stream(n, 2 * n, baseline_ops, 11);
        let mut naive = NaiveDynamicMsf::new(n);
        let (t_naive, ops_naive) = drive_updates_only(&mut naive, &small_stream);
        let (t_rec, ops_rec) = if n <= 1 << 12 {
            let mut rec = RecomputeMsf::new(n);
            drive_updates_only(&mut rec, &small_stream)
        } else {
            (Duration::ZERO, 0)
        };
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>14.2}",
            n,
            micros(t_seq, ops),
            micros(t_naive, ops_naive),
            micros(t_rec, ops_rec),
        );
    }
}

/// E4: the closed-loop serve-latency ramp (see [`pdmsf_bench::serve`]).
/// Offered load on a sharded service climbs `initial_rps` →
/// `max_rps` in `increment_rps` steps under virtual arrival pacing; per
/// round the per-op latency distribution (arrival → completion, queueing
/// included) flows through `pdmsf-obs` histograms and is reported as
/// p50/p95/p99 + failure rate. The ramp stops at saturation
/// (failure-rate / median-latency thresholds), and the headline knee —
/// the highest offered rps whose round met the p95 SLO — lands in
/// `BENCH_serve_latency.json` next to the full per-round table.
fn e4_serve_latency(quick: bool) {
    println!("\n== E4: closed-loop serve latency ramp (writes BENCH_serve_latency.json) ==");
    println!("offered load ramps per round; per-op latency = arrival -> completion");
    println!("(queueing included); knee = max offered rps meeting the p95 SLO");
    let config = if quick {
        RampConfig::quick()
    } else {
        RampConfig::standard()
    };
    // Every run drives each workload twice: once on classic
    // single-structure shard engines (`partitions: 0`) and once on
    // component-partitioned engines (grouped intra-batch apply + adaptive
    // rebalancing) — the `*_parts` rows. Comparing the two knees in one
    // run is the E4 read on whether partitioned serving holds the
    // single-structure capacity while stamping group attribution.
    let scenarios: &[ServeScenario] = if quick {
        &[
            ServeScenario {
                name: "uniform",
                tenants: 8,
                tenant_vertices: 256,
                shards: 4,
                batch_size: 256,
                zipf_permille: 0,
                partitions: 0,
                seed: 41,
            },
            ServeScenario {
                name: "uniform_parts",
                tenants: 8,
                tenant_vertices: 256,
                shards: 4,
                batch_size: 256,
                zipf_permille: 0,
                partitions: 4,
                seed: 41,
            },
        ]
    } else {
        &[
            ServeScenario {
                name: "uniform",
                tenants: 16,
                tenant_vertices: 512,
                shards: 8,
                batch_size: 512,
                zipf_permille: 0,
                partitions: 0,
                seed: 41,
            },
            ServeScenario {
                name: "uniform_parts",
                tenants: 16,
                tenant_vertices: 512,
                shards: 8,
                batch_size: 512,
                zipf_permille: 0,
                partitions: 8,
                seed: 41,
            },
            ServeScenario {
                name: "zipf_hot",
                tenants: 16,
                tenant_vertices: 512,
                shards: 8,
                batch_size: 512,
                zipf_permille: 900,
                partitions: 0,
                seed: 41,
            },
            ServeScenario {
                name: "zipf_hot_parts",
                tenants: 16,
                tenant_vertices: 512,
                shards: 8,
                batch_size: 512,
                zipf_permille: 900,
                partitions: 8,
                seed: 41,
            },
        ]
    };
    let mut records = Vec::new();
    println!(
        "{:>9} {:>6} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>5}",
        "scenario", "round", "offered_rps", "achieved", "p50_us", "p95_us", "p99_us", "fail", "ok"
    );
    let mut slowest: Option<pdmsf_obs::trace::CapturedTrace> = None;
    for scenario in scenarios {
        let (ramp, scenario_slowest) = drive_serve_ramp(scenario, &config);
        if let Some(cap) = scenario_slowest {
            if slowest.as_ref().is_none_or(|s| cap.total_ns > s.total_ns) {
                slowest = Some(cap);
            }
        }
        for r in &ramp {
            println!(
                "{:>9} {:>6} {:>12} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>8.2}% {:>5}",
                r.scenario,
                r.round,
                r.offered_rps,
                r.achieved_rps,
                r.p50_ns as f64 / 1e3,
                r.p95_ns as f64 / 1e3,
                r.p99_ns as f64 / 1e3,
                r.failure_rate * 100.0,
                if r.sustainable { "yes" } else { "NO" }
            );
        }
        match knee_point(&ramp) {
            Some(knee) => println!(
                "  {}: knee = {} rps sustained under p95 <= {} ms",
                scenario.name,
                knee,
                config.slo.as_millis()
            ),
            None => println!(
                "  {}: no sustainable round (SLO p95 <= {} ms missed from the start)",
                scenario.name,
                config.slo.as_millis()
            ),
        }
        records.extend(ramp);
    }
    // Pairwise knee read: each partitioned scenario against its
    // single-structure twin from the same run.
    for scenario in scenarios.iter().filter(|s| s.partitions > 0) {
        let base = scenario.name.trim_end_matches("_parts");
        let knee_of = |name: &str| {
            let rows: Vec<_> = records
                .iter()
                .filter(|r| r.scenario == name)
                .cloned()
                .collect();
            knee_point(&rows)
        };
        if let (Some(plain), Some(parts)) = (knee_of(base), knee_of(scenario.name)) {
            println!(
                "  {} vs {}: knee {} -> {} rps ({}x)",
                base,
                scenario.name,
                plain,
                parts,
                parts as f64 / plain as f64
            );
        }
    }
    let json = serve_records_to_json(&RunMeta::collect(), &config, &records);
    let path = "BENCH_serve_latency.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
    // Export the ramp's slowest captured batch as Chrome trace-event JSON
    // (loadable in Perfetto / about://tracing) for tail-latency forensics.
    if let Some(cap) = slowest {
        let trace_path = "BENCH_serve_trace.json";
        let trace_json = pdmsf_obs::trace::chrome_trace_json(&cap.events);
        std::fs::write(trace_path, trace_json)
            .unwrap_or_else(|e| panic!("cannot write {trace_path}: {e}"));
        println!(
            "wrote {trace_path} (slowest captured batch: trace {} at {:.1} us end-to-end, {} events)",
            cap.trace,
            cap.total_ns as f64 / 1e3,
            cap.events.len()
        );
    }
}

/// E11: PRAM depth, work and processors per update vs n (numbered E2/E3/E4
/// before the sharded service claimed E2 and the serve-latency ramp
/// claimed E4).
fn e11_pram_scaling(cfg: &Config) {
    println!("\n== E11: EREW PRAM scaling of the parallel structure (formerly E2/E3/E4) ==");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>14} {:>14} {:>12} {:>10}",
        "n", "K", "worst depth", "mean depth", "worst work", "mean work", "peak procs", "sqrt(n)"
    );
    for &n in &cfg.sizes {
        let run = pram_profile(n, cfg.ops, 21);
        println!(
            "{:>8} {:>6} {:>12} {:>12.1} {:>14} {:>14.1} {:>12} {:>10.0}",
            run.n,
            run.k,
            run.worst.depth,
            run.mean_depth,
            run.worst.work,
            run.mean_work,
            run.peak_processors,
            (n as f64).sqrt()
        );
    }
}

/// E5: persistence warm start — checkpoint size and wall time, restore
/// (warm-start) wall time against rebuilding the same state cold by
/// replaying the full op stream through the normal execution path: one
/// engine cell per benchmark size plus a sharded-service cell. Emits
/// `BENCH_persist.json` with the same run-metadata stamping as the other
/// artifacts, and differentially checks every restored state against the
/// original (forest weight) before recording it.
fn e5_persist(cfg: &Config) {
    println!("\n== E5: persistence warm start (writes BENCH_persist.json) ==");
    println!(
        "{:>8} {:>8} {:>7} {:>7} {:>11} {:>10} {:>11} {:>10} {:>8}",
        "scenario",
        "n",
        "ops",
        "edges",
        "ckpt bytes",
        "ckpt us",
        "restore us",
        "cold us",
        "speedup"
    );
    let us = |ns: u128| ns as f64 / 1e3;
    let batch_size = 16usize;
    let batches = (cfg.ops / batch_size).max(4);
    let mut records: Vec<PersistRecord> = Vec::new();

    for &n in &cfg.sizes {
        let stream = bursty_batch_stream(n, 2 * n, batches, batch_size, 7);
        let build = || {
            let mut engine = Engine::new(stream.num_vertices);
            let base: Vec<Op> = stream
                .base_edges
                .iter()
                .map(|&(u, v, weight)| Op::Link { u, v, weight })
                .collect();
            engine.execute(&base);
            let mut ops = base.len();
            for batch in &stream.batches {
                engine.execute(batch);
                ops += batch.len();
            }
            (engine, ops)
        };
        let start = Instant::now();
        let (engine, ops) = build();
        let cold = start.elapsed();
        let mut blob = Vec::new();
        let start = Instant::now();
        engine.checkpoint(&mut blob).unwrap();
        let ckpt = start.elapsed();
        let start = Instant::now();
        let restored = Engine::restore(&blob[..]).unwrap();
        let restore = start.elapsed();
        assert_eq!(
            restored.forest_weight(),
            engine.forest_weight(),
            "restored engine diverged at n={n}"
        );
        records.push(PersistRecord {
            scenario: "engine".into(),
            n: stream.num_vertices,
            k: default_sequential_k(stream.num_vertices),
            ops,
            live_edges: engine.graph().num_edges(),
            checkpoint_bytes: blob.len(),
            checkpoint_ns: ckpt.as_nanos(),
            restore_ns: restore.as_nanos(),
            cold_rebuild_ns: cold.as_nanos(),
        });
        let r = records.last().unwrap();
        println!(
            "{:>8} {:>8} {:>7} {:>7} {:>11} {:>10.1} {:>11.1} {:>10.1} {:>7.1}x",
            r.scenario,
            r.n,
            r.ops,
            r.live_edges,
            r.checkpoint_bytes,
            us(r.checkpoint_ns),
            us(r.restore_ns),
            us(r.cold_rebuild_ns),
            r.speedup()
        );
    }

    // The sharded-service cell: checkpoint_all / restore_all over every
    // shard plus the tenant table, at the middle benchmark size.
    {
        let tenants = 8usize;
        let tenant_n = (cfg.sizes[cfg.sizes.len() / 2] / tenants).max(16);
        let stream = tenant_stream(tenants, tenant_n, batches, batch_size, 400, 11);
        let specs: Vec<TenantSpec> = (0..tenants)
            .map(|t| TenantSpec::new(TenantId(t as u32), tenant_n))
            .collect();
        let build = || {
            let mut service = ShardedService::new(4, &specs);
            let base = stream.base_ops();
            service.execute(&base);
            let mut ops = base.len();
            for batch in &stream.batches {
                service.execute(batch);
                ops += batch.len();
            }
            (service, ops)
        };
        let start = Instant::now();
        let (service, ops) = build();
        let cold = start.elapsed();
        let mut blob = Vec::new();
        let start = Instant::now();
        service.checkpoint_all(&mut blob).unwrap();
        let ckpt = start.elapsed();
        let start = Instant::now();
        let restored = ShardedService::restore_all(&blob[..]).unwrap();
        let restore = start.elapsed();
        assert_eq!(
            restored.total_forest_weight(),
            service.total_forest_weight(),
            "restored service diverged"
        );
        let live: usize = (0..service.num_shards())
            .map(|s| service.shard_engine(s).graph().num_edges())
            .sum();
        records.push(PersistRecord {
            scenario: "service".into(),
            n: tenants * tenant_n,
            k: default_sequential_k(tenant_n),
            ops,
            live_edges: live,
            checkpoint_bytes: blob.len(),
            checkpoint_ns: ckpt.as_nanos(),
            restore_ns: restore.as_nanos(),
            cold_rebuild_ns: cold.as_nanos(),
        });
        let r = records.last().unwrap();
        println!(
            "{:>8} {:>8} {:>7} {:>7} {:>11} {:>10.1} {:>11.1} {:>10.1} {:>7.1}x",
            r.scenario,
            r.n,
            r.ops,
            r.live_edges,
            r.checkpoint_bytes,
            us(r.checkpoint_ns),
            us(r.restore_ns),
            us(r.cold_rebuild_ns),
            r.speedup()
        );
    }

    let json = persist_records_to_json(&RunMeta::collect(), &records);
    let path = "BENCH_persist.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({} records)", records.len());
}

/// E12: realistic workloads (grid failures/repairs, sliding windows) —
/// numbered E5 before the persistence benchmark took that slot.
fn e12_workloads(cfg: &Config) {
    println!("\n== E12: workload throughput (updates/s) ==");
    println!(
        "{:>24} {:>10} {:>14} {:>14}",
        "workload", "n", "kpr-seq", "naive"
    );
    let side = (cfg.sizes[cfg.sizes.len() / 2] as f64).sqrt() as usize;
    let scenarios = vec![
        ("grid failures/repairs", grid_stream(side, side, cfg.ops, 3)),
        (
            "random mixed",
            mixed_stream(side * side, 2 * side * side, cfg.ops, 4),
        ),
    ];
    for (name, stream) in scenarios {
        let n = stream.num_vertices;
        let mut seq = SeqDynamicMsf::new(n);
        let (t_seq, ops) = drive_updates_only(&mut seq, &stream);
        let mut naive = NaiveDynamicMsf::new(n);
        let (t_naive, ops_n) = drive_updates_only(&mut naive, &stream);
        let rate = |t: Duration, o: usize| {
            if t.is_zero() {
                0.0
            } else {
                o as f64 / t.as_secs_f64()
            }
        };
        println!(
            "{:>24} {:>10} {:>14.0} {:>14.0}",
            name,
            n,
            rate(t_seq, ops),
            rate(t_naive, ops_n)
        );
    }
}

/// E6: intra-batch update parallelism — a component-partitioned engine
/// applying its conflict-free update groups as concurrent pool jobs
/// (`grouped`) vs the same engine forced to arrival-order serial apply
/// (`serial`), over block-mixed streams whose blocks align with the
/// partition homes. Identical outcomes and forests (asserted every rep —
/// the benchmark doubles as a large-n differential test of the grouped
/// apply), so the ratio is pure intra-batch parallelism leverage. Emits
/// `BENCH_intra_batch.json`, each record stamped with **its own** pool
/// width: `PDMSF_POOL_THREADS` is read once per process, so the committed
/// artifact merges one run at width 4 with one at width 1 (where grouped
/// falls back to inline apply and must not regress).
///
/// The ROADMAP acceptance bar: grouped ≥ 1.2× serial (median ops/sec) at
/// pool width 4 on the largest cell, and no regression at width 1.
fn e6_intra_batch(quick: bool) {
    println!("\n== E6: intra-batch grouped apply (writes BENCH_intra_batch.json) ==");
    println!("paths: grouped (conflict coloring + concurrent group jobs on the pool)");
    println!("vs serial (same partitioned engine, arrival-order apply); identical");
    println!("outcomes, so the ratio is pure intra-batch parallelism leverage");
    let partitions = 8usize;
    let (sizes, batch_sizes, total_ops, reps): (&[usize], &[usize], usize, usize) = if quick {
        (&[1 << 12], &[256], 2_048, 1)
    } else {
        (&[1 << 12, 1 << 14, 1 << 16], &[256, 1_024], 8_192, 3)
    };
    let threads = pool::parallelism();
    let mut records: Vec<IntraBatchRecord> = Vec::new();
    println!(
        "{:>8} {:>7} {:>8} {:>9} {:>16} {:>16} {:>12}",
        "n", "batch", "threads", "groups", "grouped (op/s)", "serial (op/s)", "grouped/ser"
    );
    for &n in sizes {
        for &batch_size in batch_sizes {
            let batches = (total_ops / batch_size).max(1);
            // Blocks = partitions, so each block is its own update group
            // (modulo the ceil/floor boundary between the generator's
            // blocks and the structure's homes — those show as conflicts).
            // The base graph must be empty: a random-sparse base is one
            // giant cross-block component whose load would migrate nearly
            // every vertex into a single partition before the timed region
            // starts — the stream's own block-local links build the state.
            let stream = clustered_mix_batch_stream(n, 0, batches, batch_size, partitions, 83);
            let mut rates: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
            let mut groups_dispatched = 0u64;
            for _ in 0..reps {
                let mut run = |path: &str, engine: &Engine, t: Duration, ops: usize| -> f64 {
                    let stats = engine.stats();
                    records.push(IntraBatchRecord {
                        path: path.to_string(),
                        stream: "clustered".to_string(),
                        n,
                        partitions,
                        threads,
                        batch_size,
                        batches,
                        ops,
                        update_groups: stats.update_groups,
                        group_conflicts: stats.group_conflicts,
                        migrations: stats.migrations,
                        rebalances: stats.rebalances,
                        elapsed_ns: t.as_nanos(),
                    });
                    records.last().unwrap().ops_per_sec()
                };
                let mut grouped = Engine::new_partitioned(n, partitions);
                let (t_g, ops_g) = drive_engine_batched(&mut grouped, &stream);
                rates[0].push(run("grouped", &grouped, t_g, ops_g));
                groups_dispatched = grouped.stats().update_groups;

                let mut serial = Engine::new_partitioned(n, partitions);
                serial.set_serial_apply(true);
                let (t_s, ops_s) = drive_engine_batched(&mut serial, &stream);
                rates[1].push(run("serial", &serial, t_s, ops_s));

                // The two paths must agree — this benchmark doubles as a
                // large-n differential test of the grouped apply.
                assert_eq!(grouped.forest_weight(), serial.forest_weight());
                assert_eq!(grouped.forest_edges(), serial.forest_edges());
                grouped.validate_structure();
            }
            let m_grouped = median(&mut rates[0]);
            let m_serial = median(&mut rates[1]);
            println!(
                "{:>8} {:>7} {:>8} {:>9} {:>16.0} {:>16.0} {:>11.2}x",
                n,
                batch_size,
                threads,
                groups_dispatched,
                m_grouped,
                m_serial,
                if m_serial > 0.0 {
                    m_grouped / m_serial
                } else {
                    0.0
                }
            );
        }
    }
    // --- migration-heavy cell: adaptive rebalancing vs static homes ---
    // A concentrate batch drags every block's component into one partition
    // (see `migration_churn_batch_stream`); the cut batch strands them
    // there; the rest of the stream is block-local churn. The adaptive arm
    // (default engine) re-homes components right after the pile-up and
    // runs the churn as ~one group per block on small per-partition
    // structures; the static arm (`set_rebalance(false)`) stays collapsed
    // forever — a single serial group against one partition holding every
    // live edge. Same stream, bit-identical forests — the ratio is pure
    // rebalancing leverage. The cycle spans the whole stream (one pile-up):
    // re-homing costs edge mass, so what rebalancing buys is the churn
    // span that follows, and this cell measures exactly that trade.
    println!("migration stream: adaptive (default rebalancing) vs static (rebalance off)");
    let (mig_n, mig_batches, mig_batch_size) = if quick {
        (1 << 14, 18, 512)
    } else {
        (1 << 16, 48, 1024)
    };
    let mig_stream = migration_churn_batch_stream(
        mig_n,
        mig_batches,
        mig_batch_size,
        partitions,
        mig_batches,
        97,
    );
    let mig_ops: usize = mig_stream.batches.iter().map(|b| b.len()).sum();
    let mut mig_rates: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut mig_rebalances = 0u64;
    let mut mig_migrations = 0u64;
    for _ in 0..reps {
        let mut run = |path: &str, engine: &Engine, t: Duration, ops: usize| -> f64 {
            let stats = engine.stats();
            records.push(IntraBatchRecord {
                path: path.to_string(),
                stream: "migration".to_string(),
                n: mig_n,
                partitions,
                threads,
                batch_size: mig_batch_size,
                batches: mig_stream.batches.len(),
                ops,
                update_groups: stats.update_groups,
                group_conflicts: stats.group_conflicts,
                migrations: stats.migrations,
                rebalances: stats.rebalances,
                elapsed_ns: t.as_nanos(),
            });
            records.last().unwrap().ops_per_sec()
        };
        let mut adaptive = Engine::new_partitioned(mig_n, partitions);
        let (t_a, ops_a) = drive_engine_batched(&mut adaptive, &mig_stream);
        mig_rates[0].push(run("adaptive", &adaptive, t_a, ops_a));
        mig_rebalances = adaptive.stats().rebalances;
        mig_migrations = adaptive.stats().migrations;

        let mut static_e = Engine::new_partitioned(mig_n, partitions);
        static_e.set_rebalance(false);
        let (t_s, ops_s) = drive_engine_batched(&mut static_e, &mig_stream);
        mig_rates[1].push(run("static", &static_e, t_s, ops_s));

        // Rebalancing must be observable *and* invisible: the adaptive arm
        // has to re-home components, and both arms' forests must agree.
        assert!(adaptive.stats().rebalances > 0);
        assert_eq!(static_e.stats().rebalances, 0);
        assert_eq!(adaptive.forest_weight(), static_e.forest_weight());
        assert_eq!(adaptive.forest_edges(), static_e.forest_edges());
        adaptive.validate_structure();
        static_e.validate_structure();
    }
    let m_adaptive = median(&mut mig_rates[0]);
    let m_static = median(&mut mig_rates[1]);
    println!(
        "{:>8} {:>7} {:>8} {:>9} {:>16.0} {:>16.0} {:>11.2}x  ({} ops, {} rebalances, {} migrations)",
        mig_n,
        mig_batch_size,
        threads,
        "-",
        m_adaptive,
        m_static,
        if m_static > 0.0 {
            m_adaptive / m_static
        } else {
            0.0
        },
        mig_ops,
        mig_rebalances,
        mig_migrations
    );
    let meta = RunMeta::collect();
    let json = intra_batch_records_to_json(&meta, &records);
    let path = "BENCH_intra_batch.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "wrote {path} ({} records, git {}, {} pool thread(s))",
        records.len(),
        meta.git_sha,
        threads
    );
}

/// E13: update time vs density with and without sparsification — numbered
/// E6 before the intra-batch parallelism benchmark took that slot.
fn e13_sparsification(cfg: &Config) {
    println!("\n== E13: density sweep (fixed n, growing m) ==");
    let n = cfg.sizes[0].max(256);
    println!(
        "{:>8} {:>8} {:>18} {:>18} {:>14}",
        "n", "m/n", "sparsified (µs)", "naive scan (µs)", "levels"
    );
    for density in [2usize, 4, 8, 16, 32] {
        let m = density * n;
        let ops = cfg.ops.min(400);
        let stream = mixed_stream(n, m, ops, 31);
        let mut sparse = SparsifiedMsf::new_with_capacity(n, 2 * m, SeqDynamicMsf::new);
        let levels = sparse.num_levels();
        let (t_sparse, o1) = drive_updates_only(&mut sparse, &stream);
        let mut naive = NaiveDynamicMsf::new(n);
        let (t_naive, o2) = drive_updates_only(&mut naive, &stream);
        println!(
            "{:>8} {:>8} {:>18.2} {:>18.2} {:>14}",
            n,
            density,
            micros(t_sparse, o1),
            micros(t_naive, o2),
            levels
        );
    }
}

/// E7: the EREW kernels — correctness of the phased tournament under the
/// access checker plus wall-clock of the model kernels.
fn e7_kernels() {
    println!("\n== E7: EREW kernel check (phased tournament of Lemma 3.1) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "elements", "depth", "work", "accesses", "EREW clean"
    );
    for size in [1usize << 8, 1 << 10, 1 << 12, 1 << 14] {
        let xs: Vec<u64> = (0..size as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        let mut meter = CostMeter::new();
        let mut log = AccessLog::new();
        let winner = erew_tournament_min(&xs, &mut meter, Some(&mut log)).unwrap();
        let mut check_meter = CostMeter::new();
        assert_eq!(Some(winner), par_min_index(&xs, &mut check_meter));
        println!(
            "{:>10} {:>12} {:>12} {:>14} {:>12}",
            size,
            meter.total().depth,
            meter.total().work,
            log.num_accesses(),
            log.is_exclusive()
        );
    }
}

/// E8: chunk-parameter ablation around the paper's K = sqrt(n log n).
fn e8_chunk_size(cfg: &Config) {
    println!("\n== E8: chunk-size ablation (sequential structure) ==");
    let n = cfg.sizes[cfg.sizes.len() / 2];
    let k_star = default_sequential_k(n);
    println!("n = {n}, paper K* = {k_star}");
    println!("{:>10} {:>12} {:>18}", "K/K*", "K", "mean update (µs)");
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let k = ((k_star as f64 * factor) as usize).max(2);
        let t = seq_mean_update_time(n, k, cfg.ops.min(600), 41);
        println!("{:>10.2} {:>12} {:>18.2}", factor, k, t.as_secs_f64() * 1e6);
    }
}

/// E9: MWR-heavy streams (delete-only) — per-delete cost vs n.
fn e9_mwr_cost(cfg: &Config) {
    println!("\n== E9: deletion-only (MWR-heavy) streams ==");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "n", "kpr-seq (µs)", "naive (µs)", "par depth (worst)"
    );
    for &n in &cfg.sizes {
        let stream = failure_stream(n, 2 * n, 51);
        let mut seq = SeqDynamicMsf::new(n);
        let (t_seq, o1) = drive_updates_only(&mut seq, &stream);
        let small = failure_stream(n.min(1 << 12), 2 * n.min(1 << 12), 51);
        let mut naive = NaiveDynamicMsf::new(small.num_vertices);
        let (t_naive, o2) = drive_updates_only(&mut naive, &small);
        let mut par = ParDynamicMsf::new(n);
        drive(&mut par, &stream);
        println!(
            "{:>8} {:>16.2} {:>16.2} {:>16}",
            n,
            micros(t_seq, o1),
            micros(t_naive, o2),
            par.meter().worst_op().depth
        );
    }
}
