//! Crash-recovery property tests: `restore(checkpoint(S)) + replay == S`,
//! verified in lockstep against an uninterrupted twin under fault
//! injection — crashes at arbitrary byte offsets of the op log (torn
//! tails), bit flips in the checkpoint and in the log, and truncations.
//!
//! The twin discipline models acknowledgement: the engine logs a batch
//! before applying it and the caller is answered after, so a crash can only
//! lose batches whose records did not fully survive — and the recovered
//! state must equal a fresh engine that executed exactly the surviving
//! prefix of mutating batches (plus all interleaved queries, which mutate
//! nothing).

use pdmsf_engine::{Engine, Op};
use pdmsf_graph::{EdgeId, TenantId, TenantOp, VertexId, Weight};
use pdmsf_persist::{
    read_log, recover_engine, recover_service, EngineCheckpointExt, FlushPolicy, OpLogWriter,
    ServiceCheckpointExt, SharedDisk,
};
use pdmsf_shard::{ShardedService, TenantSpec};
use proptest::prelude::*;

/// Compact op encoding, concretised against the running id allocation
/// (mirrors the engine lockstep suite).
#[derive(Clone, Copy, Debug)]
enum RawOp {
    Link { u: u8, v: u8, w: u8 },
    CutNth(u8),
    CutBogus(u8),
    QueryConn { u: u8, v: u8 },
}

fn raw_op() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(u, v, w)| RawOp::Link { u, v, w }),
        3 => any::<u8>().prop_map(RawOp::CutNth),
        1 => any::<u8>().prop_map(RawOp::CutBogus),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(u, v)| RawOp::QueryConn { u, v }),
    ]
}

fn concretise(n: usize, raw_batches: &[Vec<RawOp>]) -> Vec<Vec<Op>> {
    let endpoint = |x: u8| VertexId((x as usize % (n + 1)) as u32);
    let mut next_id = 0u32;
    let mut live: Vec<EdgeId> = Vec::new();
    let mut batches = Vec::with_capacity(raw_batches.len());
    for raw in raw_batches {
        let mut ops = Vec::with_capacity(raw.len());
        for r in raw {
            let op = match *r {
                RawOp::Link { u, v, w } => {
                    let (u, v) = (endpoint(u), endpoint(v));
                    if u.index() < n && v.index() < n && u != v {
                        live.push(EdgeId(next_id));
                        next_id += 1;
                    }
                    Op::Link {
                        u,
                        v,
                        weight: Weight::new(w as i64),
                    }
                }
                RawOp::CutNth(k) => {
                    if live.is_empty() {
                        Op::Cut { id: EdgeId(9999) }
                    } else {
                        let idx = k as usize % live.len();
                        Op::Cut {
                            id: live.swap_remove(idx),
                        }
                    }
                }
                RawOp::CutBogus(k) => Op::Cut {
                    id: EdgeId((k as u32) % (next_id + 3)),
                },
                RawOp::QueryConn { u, v } => Op::QueryConnected {
                    u: endpoint(u),
                    v: endpoint(v),
                },
            };
            ops.push(op);
        }
        batches.push(ops);
    }
    batches
}

/// Assert two engines are in the same state: forest, weight, component
/// structure over every vertex pair, internal invariants, and identical
/// future behaviour on a probe batch.
fn assert_same_state(recovered: &mut Engine, twin: &mut Engine) {
    assert_eq!(recovered.forest_edges(), twin.forest_edges());
    assert_eq!(recovered.forest_weight(), twin.forest_weight());
    assert_eq!(recovered.applied_seq(), twin.applied_seq());
    recovered.structure().validate();
    let n = recovered.num_vertices() as u32;
    let pairs: Vec<Op> = (0..n)
        .flat_map(|u| {
            (u + 1..n).map(move |v| Op::QueryConnected {
                u: VertexId(u),
                v: VertexId(v),
            })
        })
        .collect();
    let a = recovered.execute(&pairs);
    let b = twin.execute(&pairs);
    assert_eq!(a.outcomes, b.outcomes, "component labels diverged");
    // Future behaviour: one more mutating batch lands identically.
    let probe = [
        Op::Link {
            u: VertexId(0),
            v: VertexId(1),
            weight: Weight::new(1),
        },
        Op::Link {
            u: VertexId(n - 1),
            v: VertexId(n - 2),
            weight: Weight::new(2),
        },
    ];
    let a = recovered.execute(&probe);
    let b = twin.execute(&probe);
    assert_eq!(
        a.outcomes, b.outcomes,
        "post-recovery id allocation drifted"
    );
    assert_eq!(recovered.forest_weight(), twin.forest_weight());
}

/// Run `batches` on a logged engine, checkpointing after batch
/// `checkpoint_after`. Returns the checkpoint bytes, the log disk, and the
/// engine's applied_seq after each batch.
fn run_logged(
    n: usize,
    batches: &[Vec<Op>],
    checkpoint_after: usize,
) -> (Vec<u8>, SharedDisk, Vec<u64>, Engine) {
    let disk = SharedDisk::new();
    let mut engine = Engine::new(n);
    engine.set_sink(Box::new(
        OpLogWriter::create(disk.clone(), 0, FlushPolicy::EveryBatch).unwrap(),
    ));
    let mut checkpoint = Vec::new();
    let mut seq_after = Vec::with_capacity(batches.len());
    for (i, ops) in batches.iter().enumerate() {
        engine.execute(ops);
        seq_after.push(engine.applied_seq());
        if i == checkpoint_after {
            engine.checkpoint(&mut checkpoint).unwrap();
        }
    }
    if checkpoint.is_empty() {
        // checkpoint_after past the stream: checkpoint the final state.
        engine.checkpoint(&mut checkpoint).unwrap();
    }
    (checkpoint, disk, seq_after, engine)
}

/// The twin: a fresh, unlogged engine that executes every batch whose
/// mutations are covered by `covered_seq` (query-only batches included —
/// they mutate nothing).
fn build_twin(n: usize, batches: &[Vec<Op>], seq_after: &[u64], covered_seq: u64) -> Engine {
    let mut twin = Engine::new(n);
    for (i, ops) in batches.iter().enumerate() {
        if seq_after[i] > covered_seq {
            break;
        }
        twin.execute(ops);
    }
    twin
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Crash at an arbitrary byte offset of the op log: recovery from the
    /// checkpoint plus the surviving log prefix reproduces exactly the
    /// state of an uninterrupted twin that executed the surviving batches.
    #[test]
    fn recovery_reproduces_the_acked_prefix(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 0..16), 1..7),
        checkpoint_after in any::<u8>(),
        crash_permille in 0u32..=1000,
    ) {
        let n = 8;
        let batches = concretise(n, &raw);
        let ckpt_ix = checkpoint_after as usize % batches.len();
        let (checkpoint, disk, seq_after, _live) = run_logged(n, &batches, ckpt_ix);

        // Crash: only a prefix of the log survives (never shorter than the
        // header — a missing log file is a different failure mode).
        let full_log = disk.snapshot();
        let crash_at = 16 + ((full_log.len() - 16) as u64 * crash_permille as u64 / 1000) as usize;
        let torn = &full_log[..crash_at];

        let (mut recovered, report) = recover_engine(&checkpoint[..], torn, 0).unwrap();
        prop_assert_eq!(report.dropped_log_bytes as usize, crash_at - report.log_valid_len as usize);

        // The twin executes exactly the batches recovery could cover: the
        // checkpoint's seq or the last surviving log record, whichever is
        // newer.
        let surviving_seq = read_log(torn).unwrap().records.last().map_or(0, |r| r.seq);
        let covered = surviving_seq.max(report.checkpoint_seq);
        prop_assert_eq!(report.recovered_seq, covered);
        let mut twin = build_twin(n, &batches, &seq_after, covered);
        assert_same_state(&mut recovered, &mut twin);
    }

    /// A flipped bit anywhere in the checkpoint refuses to restore — never
    /// a silently wrong engine.
    #[test]
    fn checkpoint_bit_flips_never_restore(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 1..16), 1..4),
        flip_byte in any::<u32>(),
        flip_bit in 0u8..8,
    ) {
        let n = 8;
        let batches = concretise(n, &raw);
        let (checkpoint, _disk, _seq, _live) = run_logged(n, &batches, batches.len() - 1);
        let mut bad = checkpoint.clone();
        let byte = flip_byte as usize % bad.len();
        bad[byte] ^= 1 << flip_bit;
        prop_assert!(
            Engine::restore(&bad[..]).is_err(),
            "flip at byte {} of {} restored silently", byte, bad.len()
        );
    }

    /// A flipped bit in the op log is either caught as a clean tail
    /// truncation (recovery lands on the surviving prefix, twin-verified)
    /// or refused outright — never absorbed into a diverged state.
    #[test]
    fn log_bit_flips_truncate_or_refuse(
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 2..16), 2..6),
        flip_byte in any::<u32>(),
        flip_bit in 0u8..8,
    ) {
        let n = 8;
        let batches = concretise(n, &raw);
        let (checkpoint, disk, seq_after, _live) = run_logged(n, &batches, 0);
        let full_log = disk.snapshot();
        let mut bad = full_log.clone();
        let byte = flip_byte as usize % bad.len();
        bad[byte] ^= 1 << flip_bit;

        match recover_engine(&checkpoint[..], &bad, 0) {
            Err(_) => {} // header flip, or a replay that no longer lines up
            Ok((mut recovered, report)) => {
                let surviving_seq =
                    read_log(&bad).unwrap().records.last().map_or(0, |r| r.seq);
                let covered = surviving_seq.max(report.checkpoint_seq);
                let mut twin = build_twin(n, &batches, &seq_after, covered);
                assert_same_state(&mut recovered, &mut twin);
            }
        }
    }
}

/// Deterministic end-to-end service recovery: per-shard op logs, a
/// mid-stream checkpoint, a crash that tears one shard's log, and recovery
/// that re-wires the tenant table — verified tenant by tenant against the
/// uninterrupted service.
#[test]
fn service_recovery_replays_per_shard_logs_and_rewires_tenants() {
    let tenants: Vec<TenantSpec> = (0..5).map(|t| TenantSpec::new(TenantId(t), 6)).collect();
    let mut service = ShardedService::new(2, &tenants);
    let disks: Vec<SharedDisk> = (0..2).map(|_| SharedDisk::new()).collect();
    for (shard, disk) in disks.iter().enumerate() {
        service.shard_engine_mut(shard).set_sink(Box::new(
            OpLogWriter::create(disk.clone(), shard as u32, FlushPolicy::EveryBatch).unwrap(),
        ));
    }
    let link = |t: u32, u: u32, v: u32, w: i64| TenantOp {
        tenant: TenantId(t),
        op: Op::Link {
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        },
    };
    let cut = |t: u32, id: u32| TenantOp {
        tenant: TenantId(t),
        op: Op::Cut { id: EdgeId(id) },
    };

    service.execute(&[
        link(0, 0, 1, 5),
        link(1, 1, 2, 3),
        link(2, 2, 3, 8),
        link(3, 3, 4, 1),
        link(4, 4, 5, 9),
    ]);
    let mut checkpoint = Vec::new();
    service.checkpoint_all(&mut checkpoint).unwrap();

    // Post-checkpoint traffic: new links and a cut, all covered only by the
    // per-shard logs.
    service.execute(&[
        link(0, 2, 3, 2),
        link(1, 3, 4, 7),
        cut(2, 0),
        link(3, 0, 1, 4),
        link(4, 0, 2, 6),
    ]);

    // Crash. Both log disks survive in full (EveryBatch policy).
    let logs: Vec<Vec<u8>> = disks.iter().map(SharedDisk::snapshot).collect();
    let log_refs: Vec<&[u8]> = logs.iter().map(Vec::as_slice).collect();
    let (mut recovered, reports) = recover_service(&checkpoint[..], &log_refs).unwrap();
    assert!(
        reports.iter().any(|r| r.replayed > 0),
        "nothing was replayed — the test lost its post-checkpoint traffic"
    );
    assert_eq!(
        recovered.total_forest_weight(),
        service.total_forest_weight()
    );
    for t in 0..5 {
        assert_eq!(
            recovered.tenant_forest_weight(TenantId(t)),
            service.tenant_forest_weight(TenantId(t)),
            "tenant {t} diverged through recovery"
        );
    }
    // The re-derived tenant table still routes tenant-local ids correctly:
    // cutting a post-checkpoint edge by its tenant-local id works on both.
    let probe = [cut(1, 1), link(0, 4, 5, 1)];
    let a = recovered.execute(&probe);
    let b = service.execute(&probe);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(
        recovered.total_forest_weight(),
        service.total_forest_weight()
    );
}

/// A torn tail on one shard's log rolls just that shard back to its last
/// surviving record; the other shards recover in full, and every recovered
/// tenant matches a twin service that only saw the surviving batches.
#[test]
fn service_recovery_tolerates_a_torn_shard_log() {
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|t| TenantSpec::pinned(TenantId(t), 6, (t % 2) as usize))
        .collect();
    let build = || {
        let mut s = ShardedService::new(2, &tenants);
        let disks: Vec<SharedDisk> = (0..2).map(|_| SharedDisk::new()).collect();
        for (shard, disk) in disks.iter().enumerate() {
            s.shard_engine_mut(shard).set_sink(Box::new(
                OpLogWriter::create(disk.clone(), shard as u32, FlushPolicy::EveryBatch).unwrap(),
            ));
        }
        (s, disks)
    };
    let link = |t: u32, u: u32, v: u32, w: i64| TenantOp {
        tenant: TenantId(t),
        op: Op::Link {
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        },
    };
    let batch1 = [link(0, 0, 1, 5), link(1, 1, 2, 3)];
    let batch2 = [link(2, 2, 3, 8), link(3, 3, 4, 1)];
    let batch3 = [link(0, 1, 2, 2), link(1, 3, 4, 7)];

    let (mut service, disks) = build();
    service.execute(&batch1);
    let mut checkpoint = Vec::new();
    service.checkpoint_all(&mut checkpoint).unwrap();
    service.execute(&batch2);
    service.execute(&batch3);

    // Shard 0's log is torn 3 bytes short: its final record is dropped.
    let log0_full = disks[0].snapshot();
    let log0_torn = &log0_full[..log0_full.len() - 3];
    let log1 = disks[1].snapshot();
    let (recovered, reports) = recover_service(&checkpoint[..], &[log0_torn, &log1]).unwrap();
    assert!(reports[0].dropped_log_bytes > 0);
    assert_eq!(reports[1].dropped_log_bytes, 0);

    // Twin: shard 0 saw batches up to its surviving seq; rebuild the same
    // coverage by replaying the op stream batch by batch on a fresh
    // service and comparing per-tenant weights for the tenants whose shard
    // recovered in full.
    for t in [1u32, 3] {
        // Tenants pinned to shard 1 — fully recovered.
        assert_eq!(
            recovered.tenant_forest_weight(TenantId(t)),
            service.tenant_forest_weight(TenantId(t)),
            "fully-logged tenant {t} diverged"
        );
    }
    // Shard 0 lost its last acked record (batch3's sub-batch); its tenants
    // roll back to the batch2 point.
    let (mut twin, _) = build();
    twin.execute(&batch1);
    twin.execute(&batch2);
    for t in [0u32, 2] {
        assert_eq!(
            recovered.tenant_forest_weight(TenantId(t)),
            twin.tenant_forest_weight(TenantId(t)),
            "torn-log tenant {t} did not roll back to the surviving prefix"
        );
    }
}

/// Recovery refuses a log that belongs to a different stream (a shard's
/// log fed to the wrong shard).
#[test]
fn recovery_refuses_a_foreign_log_stream() {
    let mut engine = Engine::new(4);
    let disk = SharedDisk::new();
    engine.set_sink(Box::new(
        OpLogWriter::create(disk.clone(), 3, FlushPolicy::EveryBatch).unwrap(),
    ));
    engine.execute(&[Op::Link {
        u: VertexId(0),
        v: VertexId(1),
        weight: Weight::new(1),
    }]);
    let mut checkpoint = Vec::new();
    engine.checkpoint(&mut checkpoint).unwrap();
    let log = disk.snapshot();
    assert!(recover_engine(&checkpoint[..], &log, 0).is_err());
    assert!(recover_engine(&checkpoint[..], &log, 3).is_ok());
}

/// Outcomes are acknowledged only after the log write: a batch whose
/// record fully survives is never lost, checked across every record
/// boundary of a multi-batch log.
#[test]
fn every_fully_logged_batch_survives_recovery() {
    let n = 6;
    let batches: Vec<Vec<Op>> = (0..4)
        .map(|i| {
            vec![Op::Link {
                u: VertexId(i),
                v: VertexId(i + 1),
                weight: Weight::new(i as i64 + 1),
            }]
        })
        .collect();
    let (checkpoint, disk, seq_after, _live) = run_logged(n, &batches, 0);
    let full_log = disk.snapshot();
    // Find each record boundary by re-reading prefixes.
    for cut in 16..=full_log.len() {
        let torn = &full_log[..cut];
        let report = read_log(torn).unwrap();
        let (mut recovered, _) = recover_engine(&checkpoint[..], torn, 0).unwrap();
        let covered = report.records.last().map_or(1, |r| r.seq);
        let mut twin = build_twin(n, &batches, &seq_after, covered.max(1));
        assert_same_state(&mut recovered, &mut twin);
    }
}
