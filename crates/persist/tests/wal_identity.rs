//! WAL byte-identity: the op log is serialized from the *plan*, before any
//! update applies, so the apply path — grouped concurrent apply on a
//! partitioned engine, forced arrival-order serial apply, or the
//! single-structure engine — can never influence the log bytes. This test
//! pins that: three engines with all three apply paths, fed identical
//! batches through identically-configured log sinks, must produce
//! **byte-identical** log streams, and replaying that one stream must
//! reproduce the same forest on every engine kind.

use pdmsf_engine::{Engine, Op};
use pdmsf_graph::{EdgeId, VertexId, Weight};
use pdmsf_persist::{read_log, EngineCheckpointExt, FlushPolicy, OpLogWriter, SharedDisk};

fn link(u: u32, v: u32, w: i64) -> Op {
    Op::Link {
        u: VertexId(u),
        v: VertexId(v),
        weight: Weight::new(w),
    }
}

/// A workload over 32 vertices in four 8-vertex partition blocks: multiple
/// independent groups per batch, a cross-block link (migration), a flap
/// pair (cancelled, but still logged), a rejected op (never logged) and
/// queries (never logged).
fn batches() -> Vec<Vec<Op>> {
    vec![
        vec![
            link(0, 1, 5),   // block 0
            link(8, 9, 3),   // block 1
            link(16, 17, 9), // block 2
            link(24, 25, 2), // block 3
            link(1, 2, 4),
        ],
        vec![
            link(2, 3, 1),
            link(9, 10, 6),
            link(17, 24, 7), // crosses blocks 2 and 3 → migration
            link(30, 31, 8),
            Op::QueryConnected {
                u: VertexId(17),
                v: VertexId(25),
            },
        ],
        vec![
            link(4, 5, 11),             // flap…
            Op::Cut { id: EdgeId(9) },  // …cancelled in-batch
            Op::Cut { id: EdgeId(0) },  // real cut, block 0
            Op::Cut { id: EdgeId(6) },  // real cut, block 1
            Op::Cut { id: EdgeId(99) }, // rejected — must not be logged
            link(10, 11, 12),
            Op::QueryForestWeight,
        ],
    ]
}

fn run_with_log(mut engine: Engine) -> (SharedDisk, Engine) {
    let disk = SharedDisk::new();
    engine.set_sink(Box::new(
        OpLogWriter::create(disk.clone(), 0, FlushPolicy::EveryBatch).unwrap(),
    ));
    for ops in batches() {
        engine.execute(&ops);
    }
    (disk, engine)
}

#[test]
fn grouped_serial_and_single_apply_write_identical_log_bytes() {
    let n = 32;
    let grouped = Engine::new_partitioned(n, 4);
    let mut forced_serial = Engine::new_partitioned(n, 4);
    forced_serial.set_serial_apply(true);
    let single = Engine::new(n);

    let (grouped_disk, grouped) = run_with_log(grouped);
    let (serial_disk, forced_serial) = run_with_log(forced_serial);
    let (single_disk, single) = run_with_log(single);

    let bytes = grouped_disk.snapshot();
    assert!(!bytes.is_empty());
    assert_eq!(
        bytes,
        serial_disk.snapshot(),
        "grouped vs forced-serial apply diverged in WAL bytes"
    );
    assert_eq!(
        bytes,
        single_disk.snapshot(),
        "partitioned vs single-structure engine diverged in WAL bytes"
    );

    // The engines agree on state too (the log equality is not vacuous).
    assert_eq!(grouped.forest_edges(), single.forest_edges());
    assert_eq!(grouped.forest_weight(), single.forest_weight());
    assert_eq!(forced_serial.forest_edges(), single.forest_edges());
    assert!(grouped.stats().update_groups > 0);
    assert_eq!(forced_serial.stats().update_groups, 0);
    grouped.validate_structure();

    // One log stream replays onto every engine kind and lands on the same
    // forest — grouped replay included (replay routes through the normal
    // grouped apply path).
    let report = read_log(&bytes).unwrap();
    assert_eq!(report.dropped_bytes, 0);
    assert_eq!(report.records.len(), 3);
    let mut replay_grouped = Engine::new_partitioned(n, 4);
    let mut replay_single = Engine::new(n);
    for record in &report.records {
        replay_grouped.replay_logged(record).unwrap();
        replay_single.replay_logged(record).unwrap();
    }
    assert_eq!(replay_grouped.forest_edges(), grouped.forest_edges());
    assert_eq!(replay_single.forest_edges(), grouped.forest_edges());
    assert_eq!(replay_grouped.forest_weight(), grouped.forest_weight());
    replay_grouped.validate_structure();
}

/// Pile-up workload over the same 32-vertex/4-block layout: per-block
/// chains, bridge links that drag every component into vertex 0's
/// partition, cuts that strand them there (the rebalance trigger), then
/// block-local churn and a second pile-up cycle. With the rebalance floor
/// forced to 1 the partitioned engines re-home components mid-stream.
fn migration_batches() -> Vec<Vec<Op>> {
    let mut chains = Vec::new();
    for b in 0..4u32 {
        for i in 0..7u32 {
            // ids 0..27
            chains.push(link(8 * b + i, 8 * b + i + 1, (8 * b + i) as i64 + 1));
        }
    }
    vec![
        chains,
        // Bridges, ids 28..30: each migrates one block's chain into
        // vertex 0's partition.
        vec![link(8, 0, 100), link(16, 0, 101), link(24, 0, 102)],
        // Cuts strand four components in one partition → rebalance.
        vec![
            Op::Cut { id: EdgeId(28) },
            Op::Cut { id: EdgeId(29) },
            Op::Cut { id: EdgeId(30) },
            Op::QueryForestWeight,
        ],
        // Block-local churn on the rebalanced layout, ids 31..34.
        vec![
            link(0, 2, 50),
            link(9, 11, 51),
            link(17, 19, 52),
            link(25, 27, 53),
        ],
        // Second cycle, ids 35..37 — rebalancing happens mid-stream, not
        // just once at the end.
        vec![link(8, 0, 103), link(16, 0, 104), link(24, 0, 105)],
        vec![
            Op::Cut { id: EdgeId(35) },
            Op::Cut { id: EdgeId(36) },
            Op::Cut { id: EdgeId(37) },
        ],
    ]
}

/// Rebalancing must be WAL-invisible: re-homing components between
/// batches re-inserts the same edges in ascending `WKey` order and never
/// touches the plan, so a rebalancing engine, a forced-serial rebalancing
/// engine and a single-structure engine (which never migrates at all)
/// write **byte-identical** logs — and replay, itself rebalancing under
/// the same floor, reconstructs identical forests *and* identical homes.
#[test]
fn migration_and_rebalance_heavy_stream_keeps_wal_bytes_identical() {
    let n = 32;
    let run = |mut engine: Engine| -> (SharedDisk, Engine) {
        let disk = SharedDisk::new();
        engine.set_sink(Box::new(
            OpLogWriter::create(disk.clone(), 0, FlushPolicy::EveryBatch).unwrap(),
        ));
        for ops in migration_batches() {
            engine.execute(&ops);
        }
        (disk, engine)
    };
    let mut grouped = Engine::new_partitioned(n, 4);
    grouped.set_rebalance_min(1);
    let mut forced_serial = Engine::new_partitioned(n, 4);
    forced_serial.set_serial_apply(true);
    forced_serial.set_rebalance_min(1);
    let single = Engine::new(n);

    let (grouped_disk, grouped) = run(grouped);
    let (serial_disk, forced_serial) = run(forced_serial);
    let (single_disk, single) = run(single);

    let bytes = grouped_disk.snapshot();
    assert!(!bytes.is_empty());
    assert_eq!(
        bytes,
        serial_disk.snapshot(),
        "grouped vs forced-serial rebalancing diverged in WAL bytes"
    );
    assert_eq!(
        bytes,
        single_disk.snapshot(),
        "rebalancing partitioned vs single-structure engine diverged in WAL bytes"
    );

    // The stream really exercised the machinery, and it stayed invisible.
    assert!(grouped.stats().rebalances >= 2, "two pile-up cycles");
    assert!(grouped.stats().migrations >= 6);
    assert_eq!(grouped.stats().rebalances, forced_serial.stats().rebalances);
    assert_eq!(grouped.forest_edges(), single.forest_edges());
    assert_eq!(grouped.forest_weight(), single.forest_weight());
    assert_eq!(forced_serial.forest_edges(), single.forest_edges());
    grouped.validate_structure();
    forced_serial.validate_structure();

    // Replay under the same rebalance floor reproduces not just the
    // forest but the exact component homes — the rebalance decision
    // sequence is a pure function of the logged update stream.
    let report = read_log(&bytes).unwrap();
    assert_eq!(report.dropped_bytes, 0);
    let mut replay = Engine::new_partitioned(n, 4);
    replay.set_rebalance_min(1);
    for record in &report.records {
        replay.replay_logged(record).unwrap();
    }
    assert_eq!(replay.forest_edges(), grouped.forest_edges());
    assert_eq!(replay.forest_weight(), grouped.forest_weight());
    let (rp, gp) = (
        replay.partitioned_structure().unwrap(),
        grouped.partitioned_structure().unwrap(),
    );
    for v in 0..n as u32 {
        assert_eq!(
            rp.home_of(VertexId(v)),
            gp.home_of(VertexId(v)),
            "replay diverged from live execution on the home of vertex {v}"
        );
    }
    replay.validate_structure();
}

#[test]
fn partitioned_checkpoint_is_refused_gracefully() {
    let mut engine = Engine::new_partitioned(8, 2);
    engine.execute(&[link(0, 1, 1), link(4, 5, 2)]);
    let mut buf = Vec::new();
    let err = engine.checkpoint(&mut buf).unwrap_err();
    assert!(
        err.to_string().contains("component-partitioned"),
        "unexpected error: {err}"
    );
    assert!(buf.is_empty(), "a refused checkpoint must write nothing");
}
