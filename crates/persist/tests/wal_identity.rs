//! WAL byte-identity: the op log is serialized from the *plan*, before any
//! update applies, so the apply path — grouped concurrent apply on a
//! partitioned engine, forced arrival-order serial apply, or the
//! single-structure engine — can never influence the log bytes. This test
//! pins that: three engines with all three apply paths, fed identical
//! batches through identically-configured log sinks, must produce
//! **byte-identical** log streams, and replaying that one stream must
//! reproduce the same forest on every engine kind.

use pdmsf_engine::{Engine, Op};
use pdmsf_graph::{EdgeId, VertexId, Weight};
use pdmsf_persist::{read_log, EngineCheckpointExt, FlushPolicy, OpLogWriter, SharedDisk};

fn link(u: u32, v: u32, w: i64) -> Op {
    Op::Link {
        u: VertexId(u),
        v: VertexId(v),
        weight: Weight::new(w),
    }
}

/// A workload over 32 vertices in four 8-vertex partition blocks: multiple
/// independent groups per batch, a cross-block link (migration), a flap
/// pair (cancelled, but still logged), a rejected op (never logged) and
/// queries (never logged).
fn batches() -> Vec<Vec<Op>> {
    vec![
        vec![
            link(0, 1, 5),   // block 0
            link(8, 9, 3),   // block 1
            link(16, 17, 9), // block 2
            link(24, 25, 2), // block 3
            link(1, 2, 4),
        ],
        vec![
            link(2, 3, 1),
            link(9, 10, 6),
            link(17, 24, 7), // crosses blocks 2 and 3 → migration
            link(30, 31, 8),
            Op::QueryConnected {
                u: VertexId(17),
                v: VertexId(25),
            },
        ],
        vec![
            link(4, 5, 11),             // flap…
            Op::Cut { id: EdgeId(9) },  // …cancelled in-batch
            Op::Cut { id: EdgeId(0) },  // real cut, block 0
            Op::Cut { id: EdgeId(6) },  // real cut, block 1
            Op::Cut { id: EdgeId(99) }, // rejected — must not be logged
            link(10, 11, 12),
            Op::QueryForestWeight,
        ],
    ]
}

fn run_with_log(mut engine: Engine) -> (SharedDisk, Engine) {
    let disk = SharedDisk::new();
    engine.set_sink(Box::new(
        OpLogWriter::create(disk.clone(), 0, FlushPolicy::EveryBatch).unwrap(),
    ));
    for ops in batches() {
        engine.execute(&ops);
    }
    (disk, engine)
}

#[test]
fn grouped_serial_and_single_apply_write_identical_log_bytes() {
    let n = 32;
    let grouped = Engine::new_partitioned(n, 4);
    let mut forced_serial = Engine::new_partitioned(n, 4);
    forced_serial.set_serial_apply(true);
    let single = Engine::new(n);

    let (grouped_disk, grouped) = run_with_log(grouped);
    let (serial_disk, forced_serial) = run_with_log(forced_serial);
    let (single_disk, single) = run_with_log(single);

    let bytes = grouped_disk.snapshot();
    assert!(!bytes.is_empty());
    assert_eq!(
        bytes,
        serial_disk.snapshot(),
        "grouped vs forced-serial apply diverged in WAL bytes"
    );
    assert_eq!(
        bytes,
        single_disk.snapshot(),
        "partitioned vs single-structure engine diverged in WAL bytes"
    );

    // The engines agree on state too (the log equality is not vacuous).
    assert_eq!(grouped.forest_edges(), single.forest_edges());
    assert_eq!(grouped.forest_weight(), single.forest_weight());
    assert_eq!(forced_serial.forest_edges(), single.forest_edges());
    assert!(grouped.stats().update_groups > 0);
    assert_eq!(forced_serial.stats().update_groups, 0);
    grouped.validate_structure();

    // One log stream replays onto every engine kind and lands on the same
    // forest — grouped replay included (replay routes through the normal
    // grouped apply path).
    let report = read_log(&bytes).unwrap();
    assert_eq!(report.dropped_bytes, 0);
    assert_eq!(report.records.len(), 3);
    let mut replay_grouped = Engine::new_partitioned(n, 4);
    let mut replay_single = Engine::new(n);
    for record in &report.records {
        replay_grouped.replay_logged(record).unwrap();
        replay_single.replay_logged(record).unwrap();
    }
    assert_eq!(replay_grouped.forest_edges(), grouped.forest_edges());
    assert_eq!(replay_single.forest_edges(), grouped.forest_edges());
    assert_eq!(replay_grouped.forest_weight(), grouped.forest_weight());
    replay_grouped.validate_structure();
}

#[test]
fn partitioned_checkpoint_is_refused_gracefully() {
    let mut engine = Engine::new_partitioned(8, 2);
    engine.execute(&[link(0, 1, 1), link(4, 5, 2)]);
    let mut buf = Vec::new();
    let err = engine.checkpoint(&mut buf).unwrap_err();
    assert!(
        err.to_string().contains("component-partitioned"),
        "unexpected error: {err}"
    );
    assert!(buf.is_empty(), "a refused checkpoint must write nothing");
}
