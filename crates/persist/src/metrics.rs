//! Always-on `pdmsf_persist_*` instrumentation, backed by the
//! [`pdmsf_obs::global`] registry.
//!
//! Persistence events are rare relative to the structures they guard (one
//! WAL record per state-mutating batch, one checkpoint per policy window),
//! so unlike the engine and shard layers there is no opt-in switch: every
//! append, fsync and checkpoint records unconditionally. The cost is one
//! `OnceLock` initialized-check plus a handful of relaxed atomic adds per
//! event — noise next to the I/O it measures.

use std::io::{self, Write};
use std::sync::{Arc, OnceLock};

use pdmsf_obs as obs;

pub(crate) struct PersistMetrics {
    /// WAL record serialization + write latency (excludes the fsync, which
    /// `wal_fsync_ns` reports separately).
    pub wal_append_ns: Arc<obs::Histogram>,
    /// Durability-barrier latency per [`crate::OpLogWriter::sync`].
    pub wal_fsync_ns: Arc<obs::Histogram>,
    pub wal_bytes: Arc<obs::Counter>,
    pub wal_records: Arc<obs::Counter>,
    /// End-to-end duration of one checkpoint serialization.
    pub checkpoint_ns: Arc<obs::Histogram>,
    pub checkpoint_bytes: Arc<obs::Counter>,
    /// Size of the most recent checkpoint, for capacity dashboards.
    pub checkpoint_last_bytes: Arc<obs::Gauge>,
    pub checkpoints: Arc<obs::Counter>,
}

static PERSIST_METRICS: OnceLock<PersistMetrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static PersistMetrics {
    PERSIST_METRICS.get_or_init(|| {
        let r = obs::global();
        PersistMetrics {
            wal_append_ns: r.histogram(
                "pdmsf_persist_wal_append_ns",
                "op-log record serialize+write latency (excluding fsync)",
            ),
            wal_fsync_ns: r.histogram(
                "pdmsf_persist_wal_fsync_ns",
                "op-log durability barrier latency",
            ),
            wal_bytes: r.counter(
                "pdmsf_persist_wal_bytes_total",
                "bytes appended to op logs (headers excluded)",
            ),
            wal_records: r.counter(
                "pdmsf_persist_wal_records_total",
                "records appended to op logs",
            ),
            checkpoint_ns: r.histogram(
                "pdmsf_persist_checkpoint_ns",
                "checkpoint serialization duration",
            ),
            checkpoint_bytes: r.counter(
                "pdmsf_persist_checkpoint_bytes_total",
                "bytes written by checkpoints",
            ),
            checkpoint_last_bytes: r.gauge(
                "pdmsf_persist_checkpoint_last_bytes",
                "size of the most recent checkpoint",
            ),
            checkpoints: r.counter("pdmsf_persist_checkpoints_total", "checkpoints written"),
        }
    })
}

/// A pass-through [`Write`] adapter counting the bytes that reach the inner
/// sink — how the checkpoint paths learn their output size without touching
/// the serializers.
pub(crate) struct CountingWriter<W> {
    inner: W,
    pub written: u64,
}

impl<W: Write> CountingWriter<W> {
    pub fn new(inner: W) -> Self {
        CountingWriter { inner, written: 0 }
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}
