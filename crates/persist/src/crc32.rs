//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. The guard on
//! every checkpoint section and op-log record: a single flipped bit anywhere
//! in a guarded span changes the checksum, so corruption is *detected* and
//! surfaced as an error instead of deserialized into a structure that
//! misbehaves later.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 accumulator.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let ix = (self.state ^ u32::from(b)) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[ix as usize];
        }
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_reference_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_and_one_shot_agree() {
        let mut c = Crc32::new();
        c.update(b"123");
        c.update(b"456789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let base = b"pdmsf checkpoint section payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
