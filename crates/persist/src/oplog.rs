//! The per-engine append-only op log: every state-mutating batch the engine
//! applies is serialized — sequence number, id base, planned updates — and
//! CRC-guarded *before* the batch executes (the engine enforces the
//! write-ahead order; see [`pdmsf_engine::OpSink`]).
//!
//! ## Record format
//!
//! A log stream is `magic ++ version ++ stream_id ++ record*`, each record
//!
//! ```text
//! seq: u64 | len: u32 | crc32(seq ++ payload): u32 | payload: [u8; len]
//! ```
//!
//! with the payload a [`LoggedBatch`] body (id base + tagged updates).
//!
//! ## Torn tails
//!
//! A crash can land mid-record: the process died while the final record was
//! being written. That is the *expected* failure mode of an append-only log,
//! not corruption — [`read_log`] stops at the first invalid record, returns
//! every record before it plus the byte offset of the valid prefix, and the
//! caller truncates the medium there before appending again. The dropped
//! tail is **reported** ([`LogReadReport::dropped_bytes`]), never silently
//! absorbed: the recovery layer surfaces it so an operator can tell "clean
//! shutdown" from "lost the final in-flight batch". Batches are acknowledged
//! to callers only after the log write returns, so a dropped tail can only
//! contain batches that were never acknowledged.

use std::fs::File;
use std::io::{self, Write};
use std::time::Instant;

use pdmsf_engine::{LoggedBatch, LoggedUpdate, OpSink};
use pdmsf_graph::{EdgeId, VertexId, Weight};
use pdmsf_obs as obs;

use crate::format::{payload_crc, PersistError, FORMAT_VERSION, LOG_MAGIC};
use crate::metrics::metrics;

/// Update tag byte: a link record follows.
const UPD_LINK: u8 = 0;
/// Update tag byte: a cut record follows.
const UPD_CUT: u8 = 1;

/// A writable log device: an ordered byte sink with a durability barrier.
/// The generic parameter of [`OpLogWriter`] — files in production, in-memory
/// buffers and fault-injecting wrappers in tests.
pub trait LogMedium: Write {
    /// Make everything written so far durable (fsync for files; a no-op for
    /// memory media).
    fn sync(&mut self) -> io::Result<()>;
}

impl LogMedium for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl LogMedium for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<M: LogMedium + ?Sized> LogMedium for &mut M {
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// When the log writer issues its durability barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Sync after every record — strongest durability, every acknowledged
    /// batch survives any crash.
    EveryBatch,
    /// Sync after every `n` records — bounded loss window of at most `n-1`
    /// acknowledged batches on a crash (plus whatever the OS flushed on its
    /// own).
    EveryN(u64),
    /// Never sync automatically; the caller invokes [`OpLogWriter::sync`]
    /// at its own checkpoints.
    Manual,
}

/// An append-only op-log writer over a [`LogMedium`]. Implements
/// [`OpSink`], so it plugs directly into [`pdmsf_engine::Engine::set_sink`].
pub struct OpLogWriter<M: LogMedium> {
    medium: M,
    policy: FlushPolicy,
    /// Records written since the last sync.
    unsynced: u64,
    /// Sequence number of the last record written (0 before any).
    last_seq: u64,
    /// Records written over the writer's lifetime.
    records: u64,
}

impl<M: LogMedium> OpLogWriter<M> {
    /// Start a **new** log on an empty medium: writes the stream header,
    /// syncs it, and accepts records starting at sequence 1.
    pub fn create(mut medium: M, stream_id: u32, policy: FlushPolicy) -> io::Result<Self> {
        medium.write_all(&LOG_MAGIC)?;
        medium.write_all(&FORMAT_VERSION.to_le_bytes())?;
        medium.write_all(&stream_id.to_le_bytes())?;
        medium.sync()?;
        Ok(OpLogWriter {
            medium,
            policy,
            unsynced: 0,
            last_seq: 0,
            records: 0,
        })
    }

    /// Resume appending to an **existing** log. The medium must be
    /// positioned at the end of its valid prefix (after the caller truncated
    /// any torn tail reported by [`read_log`]); `last_seq` is the sequence
    /// number of the final valid record (0 if the log holds only a header).
    pub fn resume(medium: M, policy: FlushPolicy, last_seq: u64) -> Self {
        OpLogWriter {
            medium,
            policy,
            unsynced: 0,
            last_seq,
            records: 0,
        }
    }

    /// Issue the durability barrier now.
    pub fn sync(&mut self) -> io::Result<()> {
        let t0 = Instant::now();
        let tspan =
            obs::trace::TSpan::start(obs::trace::Phase::WalFsync, self.last_seq, self.unsynced);
        self.medium.sync()?;
        tspan.stop();
        metrics().wal_fsync_ns.record_duration(t0.elapsed());
        self.unsynced = 0;
        Ok(())
    }

    /// Sequence number of the last record written (0 if none yet).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Records written through this writer (excludes records already on the
    /// medium when resuming).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Sync and hand back the medium.
    pub fn into_medium(mut self) -> io::Result<M> {
        self.medium.sync()?;
        Ok(self.medium)
    }
}

impl<M: LogMedium + Send> OpSink for OpLogWriter<M> {
    fn record(&mut self, seq: u64, batch: &LoggedBatch) -> io::Result<()> {
        debug_assert_eq!(seq, batch.seq);
        if seq != self.last_seq + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "op log got seq {seq} after {}: the log would not replay",
                    self.last_seq
                ),
            ));
        }
        let t0 = Instant::now();
        let payload = encode_batch(batch);
        let tspan =
            obs::trace::TSpan::start(obs::trace::Phase::WalAppend, seq, 16 + payload.len() as u64);
        self.medium.write_all(&seq.to_le_bytes())?;
        self.medium
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.medium
            .write_all(&payload_crc(seq, &payload).to_le_bytes())?;
        self.medium.write_all(&payload)?;
        tspan.stop();
        let m = metrics();
        m.wal_append_ns.record_duration(t0.elapsed());
        m.wal_bytes.add(16 + payload.len() as u64);
        m.wal_records.inc();
        self.last_seq = seq;
        self.records += 1;
        self.unsynced += 1;
        let due = match self.policy {
            FlushPolicy::EveryBatch => true,
            FlushPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FlushPolicy::Manual => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }
}

fn encode_batch(batch: &LoggedBatch) -> Vec<u8> {
    // 8 (id_base) + 8 (count) + at most 18 bytes per update.
    let mut out = Vec::with_capacity(16 + batch.updates.len() * 18);
    out.extend_from_slice(&batch.id_base.to_le_bytes());
    out.extend_from_slice(&(batch.updates.len() as u64).to_le_bytes());
    for u in &batch.updates {
        match *u {
            LoggedUpdate::Link {
                id,
                u,
                v,
                weight,
                cancelled,
            } => {
                out.push(UPD_LINK);
                out.extend_from_slice(&id.0.to_le_bytes());
                out.extend_from_slice(&u.0.to_le_bytes());
                out.extend_from_slice(&v.0.to_le_bytes());
                out.extend_from_slice(&weight.raw().to_le_bytes());
                out.push(u8::from(cancelled));
            }
            LoggedUpdate::Cut { id, cancelled } => {
                out.push(UPD_CUT);
                out.extend_from_slice(&id.0.to_le_bytes());
                out.push(u8::from(cancelled));
            }
        }
    }
    out
}

fn decode_batch(seq: u64, payload: &[u8]) -> Result<LoggedBatch, PersistError> {
    let mut d = crate::format::Dec::new(payload);
    let id_base = d.u64()?;
    let count = d.u64()?;
    if count > payload.len() as u64 {
        return Err(PersistError::Corrupt(format!(
            "log record {seq} declares {count} updates in a {}-byte payload",
            payload.len()
        )));
    }
    let mut updates = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let tag = d.u8()?;
        let update = match tag {
            UPD_LINK => LoggedUpdate::Link {
                id: EdgeId(d.u32()?),
                u: VertexId(d.u32()?),
                v: VertexId(d.u32()?),
                weight: Weight::from_raw(d.i64()?),
                cancelled: match d.u8()? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(PersistError::Corrupt(format!(
                            "log record {seq} has a non-boolean cancel flag {b}"
                        )))
                    }
                },
            },
            UPD_CUT => LoggedUpdate::Cut {
                id: EdgeId(d.u32()?),
                cancelled: match d.u8()? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(PersistError::Corrupt(format!(
                            "log record {seq} has a non-boolean cancel flag {b}"
                        )))
                    }
                },
            },
            t => {
                return Err(PersistError::Corrupt(format!(
                    "log record {seq} has an unknown update tag {t}"
                )))
            }
        };
        updates.push(update);
    }
    d.finish(&format!("log record {seq}"))?;
    Ok(LoggedBatch {
        seq,
        id_base,
        updates,
    })
}

/// What [`read_log`] found.
pub struct LogReadReport {
    /// The stream id stamped into the log header at creation.
    pub stream_id: u32,
    /// Every valid record, in sequence order.
    pub records: Vec<LoggedBatch>,
    /// Byte length of the valid prefix (header + intact records). The
    /// caller truncates the medium to this length before resuming appends.
    pub valid_len: u64,
    /// Bytes after the valid prefix — a torn final record from a crash
    /// mid-append (0 after a clean shutdown). Reported, never hidden.
    pub dropped_bytes: u64,
}

/// Read an op log from raw bytes: validate the header, then decode records
/// until the bytes run out or a record fails its length/CRC/shape checks
/// (the torn-tail point).
///
/// Damage *before* the tail is still fatal-by-construction in practice: a
/// flipped bit in record `i` truncates the log at `i`, and recovery then
/// fails loudly when the engine's `applied_seq` (or a later checkpoint)
/// expects records beyond it — corruption surfaces as a refused recovery,
/// not as silently shortened history.
pub fn read_log(bytes: &[u8]) -> Result<LogReadReport, PersistError> {
    if bytes.len() < 16 {
        return Err(PersistError::Corrupt(
            "op log shorter than its header".to_string(),
        ));
    }
    if bytes[0..8] != LOG_MAGIC {
        return Err(PersistError::Corrupt(
            "bad magic: not a pdmsf op log".to_string(),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "unsupported op-log format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let stream_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut pos = 16usize;
    let mut expected_seq: Option<u64> = None;
    loop {
        let record = try_record(&bytes[pos..], expected_seq);
        match record {
            Some((batch, consumed)) => {
                expected_seq = Some(batch.seq + 1);
                records.push(batch);
                pos += consumed;
            }
            None => break,
        }
    }
    Ok(LogReadReport {
        stream_id,
        records,
        valid_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
    })
}

/// Decode one record from the front of `bytes`; `None` if the bytes do not
/// hold a complete, checksummed, correctly-sequenced record.
fn try_record(bytes: &[u8], expected_seq: Option<u64>) -> Option<(LoggedBatch, usize)> {
    if bytes.len() < 16 {
        return None;
    }
    let seq = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() < 16 + len {
        return None;
    }
    let payload = &bytes[16..16 + len];
    if payload_crc(seq, payload) != crc {
        return None;
    }
    if let Some(want) = expected_seq {
        if seq != want {
            return None;
        }
    }
    let batch = decode_batch(seq, payload).ok()?;
    Some((batch, 16 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(seq: u64, id_base: u64) -> LoggedBatch {
        LoggedBatch {
            seq,
            id_base,
            updates: vec![
                LoggedUpdate::Link {
                    id: EdgeId(id_base as u32),
                    u: VertexId(0),
                    v: VertexId(1),
                    weight: Weight::new(5),
                    cancelled: false,
                },
                LoggedUpdate::Cut {
                    id: EdgeId(0),
                    cancelled: false,
                },
            ],
        }
    }

    #[test]
    fn log_round_trips_records() {
        let mut writer = OpLogWriter::create(Vec::new(), 7, FlushPolicy::EveryBatch).unwrap();
        let batches = [batch(1, 0), batch(2, 1), batch(3, 2)];
        for b in &batches {
            writer.record(b.seq, b).unwrap();
        }
        assert_eq!(writer.last_seq(), 3);
        let bytes = writer.into_medium().unwrap();
        let report = read_log(&bytes).unwrap();
        assert_eq!(report.stream_id, 7);
        assert_eq!(report.records, batches);
        assert_eq!(report.dropped_bytes, 0);
        assert_eq!(report.valid_len, bytes.len() as u64);
    }

    #[test]
    fn writer_refuses_sequence_gaps() {
        let mut writer = OpLogWriter::create(Vec::new(), 0, FlushPolicy::Manual).unwrap();
        writer.record(1, &batch(1, 0)).unwrap();
        assert!(writer.record(3, &batch(3, 2)).is_err());
        assert!(writer.record(1, &batch(1, 0)).is_err());
        writer.record(2, &batch(2, 1)).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let mut writer = OpLogWriter::create(Vec::new(), 0, FlushPolicy::EveryBatch).unwrap();
        writer.record(1, &batch(1, 0)).unwrap();
        writer.record(2, &batch(2, 1)).unwrap();
        let full = writer.into_medium().unwrap();
        let clean = read_log(&full).unwrap();
        let record2_start = {
            // Re-read record 1 alone to find its end.
            let mut w = OpLogWriter::create(Vec::new(), 0, FlushPolicy::EveryBatch).unwrap();
            w.record(1, &batch(1, 0)).unwrap();
            w.into_medium().unwrap().len()
        };
        // Every torn prefix of record 2 drops exactly record 2.
        for cut in record2_start..full.len() {
            let torn = &full[..cut];
            let report = read_log(torn).unwrap();
            assert_eq!(report.records.len(), 1, "cut at {cut}");
            assert_eq!(report.records[0], clean.records[0]);
            assert_eq!(report.valid_len as usize, record2_start);
            assert_eq!(report.dropped_bytes as usize, cut - record2_start);
        }
    }

    #[test]
    fn mid_record_bit_flips_stop_the_replay_at_that_record() {
        let mut writer = OpLogWriter::create(Vec::new(), 0, FlushPolicy::EveryBatch).unwrap();
        for s in 1..=3 {
            writer.record(s, &batch(s, s - 1)).unwrap();
        }
        let full = writer.into_medium().unwrap();
        let header_and_first = {
            let mut w = OpLogWriter::create(Vec::new(), 0, FlushPolicy::EveryBatch).unwrap();
            w.record(1, &batch(1, 0)).unwrap();
            w.into_medium().unwrap().len()
        };
        // Flip one bit inside record 2: the log reads as [record 1] with
        // the rest reported dropped — never as three records with a
        // corrupted middle.
        let mut bad = full.clone();
        bad[header_and_first + 20] ^= 0x40;
        let report = read_log(&bad).unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(report.dropped_bytes > 0);
    }

    #[test]
    fn resume_appends_after_a_valid_prefix() {
        let mut writer = OpLogWriter::create(Vec::new(), 0, FlushPolicy::EveryBatch).unwrap();
        writer.record(1, &batch(1, 0)).unwrap();
        let mut bytes = writer.into_medium().unwrap();
        // Simulate a crash that tore a half-written record 2.
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[9, 9, 9]);
        let report = read_log(&bytes).unwrap();
        assert_eq!(report.records.len(), 1);
        bytes.truncate(report.valid_len as usize);
        let last = report.records.last().unwrap().seq;
        let mut resumed = OpLogWriter::resume(bytes, FlushPolicy::EveryBatch, last);
        resumed.record(2, &batch(2, 1)).unwrap();
        let bytes = resumed.into_medium().unwrap();
        let report = read_log(&bytes).unwrap();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.dropped_bytes, 0);
    }

    #[test]
    fn empty_log_and_bad_headers() {
        let writer = OpLogWriter::create(Vec::new(), 3, FlushPolicy::Manual).unwrap();
        let bytes = writer.into_medium().unwrap();
        let report = read_log(&bytes).unwrap();
        assert_eq!(report.stream_id, 3);
        assert!(report.records.is_empty());
        assert!(read_log(b"short").is_err());
        assert!(read_log(b"NOTALOG!....0000").is_err());
    }
}
