//! Checkpointing: flatten an [`Engine`] or a [`ShardedService`] into the
//! versioned, CRC-guarded section stream of [`crate::format`], and restore
//! it — with every image importer's structural validation *and* the
//! engine/service-level cross-validation applied on the way back in, so a
//! checkpoint either restores to exactly the state that was saved or is
//! refused with an error naming what broke.
//!
//! What a checkpoint holds is the serializable image layer of the stack:
//! the [`DynGraph`] mirror image, the full SoA bank image of the MSF
//! structure ([`pdmsf_core::MsfImage`] — chunk banks, row bank, free lists
//! in recycling order), the engine's op-log sequence number and counters,
//! and (for a service) the tenant table. Everything rebuilt instead of
//! stored — the link-cut tree, the cost meter, scratch buffers — is
//! documented in `pdmsf_core::snapshot`.

use std::io::{Read, Write};
use std::time::Instant;

use pdmsf_core::{ChunkArenaImage, MsfImage, ParDynamicMsf, RowBankImage};
use pdmsf_engine::{Engine, EngineStats};
use pdmsf_graph::{DynGraph, DynGraphImage, EdgeId, TenantId};
use pdmsf_shard::{ServiceStats, ShardedService, TenantRecord};

use crate::format::{
    expect_section, read_header, write_header, write_section, Dec, Enc, PersistError, KIND_ENGINE,
    KIND_SERVICE, SEC_END, SEC_ENGINE, SEC_SHARD, SEC_TENANTS,
};
use crate::metrics::{metrics, CountingWriter};

/// Stamp one finished checkpoint into the `pdmsf_persist_checkpoint_*`
/// families.
fn note_checkpoint(bytes: u64, started: Instant) {
    let m = metrics();
    m.checkpoint_ns.record_duration(started.elapsed());
    m.checkpoint_bytes.add(bytes);
    m.checkpoint_last_bytes.set(bytes as i64);
    m.checkpoints.inc();
}

// ---------------------------------------------------------------------------
// Engine blob codec (shared by the engine checkpoint and the per-shard
// sections of a service checkpoint).
// ---------------------------------------------------------------------------

fn encode_engine(engine: &Engine) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(engine.applied_seq());
    let s = engine.stats();
    e.u64(s.batches);
    e.u64(s.ops);
    e.u64(s.applied_updates);
    e.u64(s.cancelled_pairs);
    e.u64(s.rejected);
    e.u64(s.queries);
    e.u64(s.deduped_queries);
    e.u64(s.snapshots);
    e.u64(s.update_groups);
    e.u64(s.group_conflicts);

    let g = engine.graph().to_image();
    e.lane_u32(&g.edge_u);
    e.lane_u32(&g.edge_v);
    e.lane_i64(&g.edge_weight);
    e.lane_u8(&g.edge_alive);
    e.lane_u64(&g.adj_offsets);
    e.lane_u32(&g.adj_data);

    let m = engine.structure().to_image();
    e.u64(m.k);
    e.u8(m.model);
    e.u8(m.exec);
    e.lane_u32(&m.edge_ids);
    e.lane_u32(&m.edge_u);
    e.lane_u32(&m.edge_v);
    e.lane_i64(&m.edge_weight);
    e.lane_u32(&m.edge_fwd);
    e.lane_u32(&m.edge_bwd);
    e.lane_u32(&m.edge_free);
    e.lane_u64(&m.adj_offsets);
    e.lane_u32(&m.adj_data);
    e.lane_u64(&m.vocc_offsets);
    e.lane_u32(&m.vocc_data);
    e.lane_u32(&m.principal);
    e.lane_u32(&m.vertex_chunk);
    let c = &m.chunks;
    e.lane_u32(&c.parent);
    e.lane_u32(&c.left);
    e.lane_u32(&c.right);
    e.lane_u32(&c.size);
    e.lane_u64(&c.occ_offsets);
    e.lane_u32(&c.occ_data);
    e.lane_u64(&c.adj_count);
    e.lane_u32(&c.slot);
    e.lane_u32(&c.row);
    e.lane_u8(&c.flags);
    e.lane_u32(&c.free_ids);
    e.lane_u32(&c.occ_vertex);
    e.lane_u32(&c.occ_chunk);
    e.lane_u32(&c.occ_pos);
    e.lane_u32(&c.occ_vpos);
    e.lane_u32(&c.occ_arc);
    e.lane_u8(&c.occ_flags);
    e.lane_u32(&c.occ_free);
    let r = &m.rows;
    e.u64(r.stride);
    e.u64(r.slabs);
    e.lane_i64(&r.key_weight);
    e.lane_u32(&r.key_edge);
    e.lane_u8(&r.memb);
    e.lane_u32(&r.free);
    e.lane_u32(&m.slot_owner);
    e.lane_u32(&m.slot_free);
    e.lane_u32(&m.touched);
    e.u64(m.num_tree_edges);
    e.i128(m.forest_weight);
    e.into_bytes()
}

fn decode_engine(payload: &[u8]) -> Result<Engine, PersistError> {
    let mut d = Dec::new(payload);
    let applied_seq = d.u64()?;
    let stats = EngineStats {
        batches: d.u64()?,
        ops: d.u64()?,
        applied_updates: d.u64()?,
        cancelled_pairs: d.u64()?,
        rejected: d.u64()?,
        queries: d.u64()?,
        deduped_queries: d.u64()?,
        snapshots: d.u64()?,
        update_groups: d.u64()?,
        group_conflicts: d.u64()?,
        // Not part of the format: checkpoints exist only for
        // single-structure engines, where the partitioned structure's
        // migration/rebalance counters are identically zero.
        ..EngineStats::default()
    };
    let graph_image = DynGraphImage {
        edge_u: d.lane_u32()?,
        edge_v: d.lane_u32()?,
        edge_weight: d.lane_i64()?,
        edge_alive: d.lane_u8()?,
        adj_offsets: d.lane_u64()?,
        adj_data: d.lane_u32()?,
    };
    let msf_image = MsfImage {
        k: d.u64()?,
        model: d.u8()?,
        exec: d.u8()?,
        edge_ids: d.lane_u32()?,
        edge_u: d.lane_u32()?,
        edge_v: d.lane_u32()?,
        edge_weight: d.lane_i64()?,
        edge_fwd: d.lane_u32()?,
        edge_bwd: d.lane_u32()?,
        edge_free: d.lane_u32()?,
        adj_offsets: d.lane_u64()?,
        adj_data: d.lane_u32()?,
        vocc_offsets: d.lane_u64()?,
        vocc_data: d.lane_u32()?,
        principal: d.lane_u32()?,
        vertex_chunk: d.lane_u32()?,
        chunks: ChunkArenaImage {
            parent: d.lane_u32()?,
            left: d.lane_u32()?,
            right: d.lane_u32()?,
            size: d.lane_u32()?,
            occ_offsets: d.lane_u64()?,
            occ_data: d.lane_u32()?,
            adj_count: d.lane_u64()?,
            slot: d.lane_u32()?,
            row: d.lane_u32()?,
            flags: d.lane_u8()?,
            free_ids: d.lane_u32()?,
            occ_vertex: d.lane_u32()?,
            occ_chunk: d.lane_u32()?,
            occ_pos: d.lane_u32()?,
            occ_vpos: d.lane_u32()?,
            occ_arc: d.lane_u32()?,
            occ_flags: d.lane_u8()?,
            occ_free: d.lane_u32()?,
        },
        rows: RowBankImage {
            stride: d.u64()?,
            slabs: d.u64()?,
            key_weight: d.lane_i64()?,
            key_edge: d.lane_u32()?,
            memb: d.lane_u8()?,
            free: d.lane_u32()?,
        },
        slot_owner: d.lane_u32()?,
        slot_free: d.lane_u32()?,
        touched: d.lane_u32()?,
        num_tree_edges: d.u64()?,
        forest_weight: d.i128()?,
    };
    d.finish("engine section")?;

    let graph = DynGraph::from_image(&graph_image).map_err(PersistError::Inconsistent)?;
    let msf = ParDynamicMsf::from_image(&msf_image).map_err(PersistError::Inconsistent)?;
    Engine::from_restored_parts(graph, msf, stats, applied_seq).map_err(PersistError::Inconsistent)
}

// ---------------------------------------------------------------------------
// Tenant table codec.
// ---------------------------------------------------------------------------

fn encode_tenants(service: &ShardedService) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(service.num_shards() as u64);
    let s = service.stats();
    e.u64(s.batches);
    e.u64(s.ops);
    e.u64(s.router_rejected);
    e.u64(s.shard_batches);
    e.u64(s.weight_sweeps);
    let tenants = service.export_tenants();
    e.u64(tenants.len() as u64);
    for t in &tenants {
        e.u32(t.id.0);
        e.u32(t.shard);
        e.u32(t.base);
        e.u32(t.vertices);
        let globals: Vec<u32> = t.edge_ids.iter().map(|id| id.0).collect();
        e.lane_u32(&globals);
    }
    e.into_bytes()
}

fn decode_tenants(
    payload: &[u8],
) -> Result<(usize, ServiceStats, Vec<TenantRecord>), PersistError> {
    let mut d = Dec::new(payload);
    let shards = d.u64()? as usize;
    let stats = ServiceStats {
        batches: d.u64()?,
        ops: d.u64()?,
        router_rejected: d.u64()?,
        shard_batches: d.u64()?,
        weight_sweeps: d.u64()?,
    };
    let n = d.u64()?;
    let mut tenants = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        tenants.push(TenantRecord {
            id: TenantId(d.u32()?),
            shard: d.u32()?,
            base: d.u32()?,
            vertices: d.u32()?,
            edge_ids: d.lane_u32()?.into_iter().map(EdgeId).collect(),
        });
    }
    d.finish("tenant section")?;
    Ok((shards, stats, tenants))
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

/// Checkpoint/restore on [`Engine`].
pub trait EngineCheckpointExt: Sized {
    /// Serialize the engine's full state into `w` as a versioned,
    /// CRC-guarded checkpoint stream.
    fn checkpoint<W: Write>(&self, w: W) -> Result<(), PersistError>;

    /// Rebuild an engine from a stream written by
    /// [`EngineCheckpointExt::checkpoint`]. Truncated or bit-flipped
    /// streams, and internally inconsistent ones, are refused. The restored
    /// engine has **no op-log sink attached** — recovery attaches one after
    /// replaying the log tail.
    fn restore<R: Read>(r: R) -> Result<Self, PersistError>;
}

impl EngineCheckpointExt for Engine {
    fn checkpoint<W: Write>(&self, w: W) -> Result<(), PersistError> {
        if self.is_partitioned() {
            // Flattening a component-partitioned structure into the
            // single-structure image format is not supported yet; refuse
            // with a clear error instead of panicking inside
            // `Engine::structure()`.
            return Err(PersistError::Inconsistent(
                "component-partitioned engines do not support checkpointing yet \
                 (their op log is replayable as usual)"
                    .to_string(),
            ));
        }
        let t0 = Instant::now();
        let mut w = CountingWriter::new(w);
        write_header(&mut w, KIND_ENGINE)?;
        write_section(&mut w, SEC_ENGINE, &encode_engine(self))?;
        write_section(&mut w, SEC_END, &[])?;
        w.flush()?;
        note_checkpoint(w.written, t0);
        Ok(())
    }

    fn restore<R: Read>(mut r: R) -> Result<Engine, PersistError> {
        let kind = read_header(&mut r)?;
        if kind != KIND_ENGINE {
            return Err(PersistError::Corrupt(format!(
                "expected an engine checkpoint (kind {KIND_ENGINE}), found kind {kind}"
            )));
        }
        let payload = expect_section(&mut r, SEC_ENGINE, "engine")?;
        let engine = decode_engine(&payload)?;
        expect_section(&mut r, SEC_END, "end")?;
        Ok(engine)
    }
}

/// Checkpoint/restore on [`ShardedService`].
pub trait ServiceCheckpointExt: Sized {
    /// Serialize the whole service — tenant table, service counters, and
    /// every shard engine as its own CRC-guarded section — into `w`.
    fn checkpoint_all<W: Write>(&self, w: W) -> Result<(), PersistError>;

    /// Rebuild a service from a stream written by
    /// [`ServiceCheckpointExt::checkpoint_all`]: every shard section is
    /// restored and re-wired to the router through the validated
    /// tenant-table section. Restored shard engines have no op-log sinks.
    fn restore_all<R: Read>(r: R) -> Result<Self, PersistError>;
}

impl ServiceCheckpointExt for ShardedService {
    fn checkpoint_all<W: Write>(&self, w: W) -> Result<(), PersistError> {
        if (0..self.num_shards()).any(|s| self.shard_engine(s).is_partitioned()) {
            return Err(PersistError::Inconsistent(
                "component-partitioned shard engines do not support checkpointing yet \
                 (their op log is replayable as usual)"
                    .to_string(),
            ));
        }
        let t0 = Instant::now();
        let mut w = CountingWriter::new(w);
        write_header(&mut w, KIND_SERVICE)?;
        write_section(&mut w, SEC_TENANTS, &encode_tenants(self))?;
        for shard in 0..self.num_shards() {
            let mut blob = Enc::new();
            blob.u32(shard as u32);
            let mut bytes = blob.into_bytes();
            bytes.extend_from_slice(&encode_engine(self.shard_engine(shard)));
            write_section(&mut w, SEC_SHARD, &bytes)?;
        }
        write_section(&mut w, SEC_END, &[])?;
        w.flush()?;
        note_checkpoint(w.written, t0);
        Ok(())
    }

    fn restore_all<R: Read>(mut r: R) -> Result<ShardedService, PersistError> {
        let kind = read_header(&mut r)?;
        if kind != KIND_SERVICE {
            return Err(PersistError::Corrupt(format!(
                "expected a service checkpoint (kind {KIND_SERVICE}), found kind {kind}"
            )));
        }
        let tenant_payload = expect_section(&mut r, SEC_TENANTS, "tenant table")?;
        let (num_shards, stats, tenants) = decode_tenants(&tenant_payload)?;
        let mut shards = Vec::with_capacity(num_shards.min(1 << 16));
        for expect in 0..num_shards {
            let payload = expect_section(&mut r, SEC_SHARD, "shard engine")?;
            if payload.len() < 4 {
                return Err(PersistError::Corrupt(
                    "shard section too short for its index".to_string(),
                ));
            }
            let ix = u32::from_le_bytes(payload[0..4].try_into().unwrap());
            if ix as usize != expect {
                return Err(PersistError::Corrupt(format!(
                    "shard sections out of order: expected shard {expect}, found {ix}"
                )));
            }
            shards.push(decode_engine(&payload[4..])?);
        }
        expect_section(&mut r, SEC_END, "end")?;
        ShardedService::from_restored_parts(shards, tenants, stats)
            .map_err(PersistError::Inconsistent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::read_section;
    use pdmsf_graph::{BatchOp, TenantOp, VertexId, Weight};
    use pdmsf_shard::TenantSpec;

    fn link(u: u32, v: u32, w: i64) -> BatchOp {
        BatchOp::Link {
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        }
    }

    fn build_engine() -> Engine {
        let mut engine = Engine::new(16);
        engine.execute(&[
            link(0, 1, 5),
            link(1, 2, 3),
            link(2, 3, 8),
            link(0, 3, 1),
            link(4, 5, 2),
        ]);
        engine.execute(&[BatchOp::Cut { id: EdgeId(0) }, link(5, 6, 7), link(6, 4, 4)]);
        engine
    }

    #[test]
    fn engine_checkpoint_round_trips() {
        let engine = build_engine();
        let mut buf = Vec::new();
        engine.checkpoint(&mut buf).unwrap();
        let restored = Engine::restore(&buf[..]).unwrap();
        assert_eq!(restored.forest_edges(), engine.forest_edges());
        assert_eq!(restored.forest_weight(), engine.forest_weight());
        assert_eq!(restored.stats(), engine.stats());
        assert_eq!(restored.applied_seq(), engine.applied_seq());
        restored.structure().validate();
        // Bank-exact restore: re-checkpointing produces identical bytes.
        let mut buf2 = Vec::new();
        restored.checkpoint(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn engine_checkpoint_detects_corruption_everywhere() {
        let engine = build_engine();
        let mut buf = Vec::new();
        engine.checkpoint(&mut buf).unwrap();
        // Every truncation is refused.
        for cut in 0..buf.len() {
            assert!(
                Engine::restore(&buf[..cut]).is_err(),
                "truncation at {cut} of {} restored silently",
                buf.len()
            );
        }
        // A bit flip in every byte is refused (stride 7 keeps this fast
        // while still visiting every section and the header).
        for byte in (0..buf.len()).step_by(7) {
            let mut bad = buf.clone();
            bad[byte] ^= 0x10;
            assert!(
                Engine::restore(&bad[..]).is_err(),
                "bit flip at byte {byte} restored silently"
            );
        }
    }

    #[test]
    fn service_checkpoint_round_trips_and_rewires_tenants() {
        let tenants: Vec<TenantSpec> = (0..6).map(|t| TenantSpec::new(TenantId(t), 8)).collect();
        let mut service = ShardedService::new(3, &tenants);
        let op = |t: u32, u: u32, v: u32, w: i64| TenantOp {
            tenant: TenantId(t),
            op: link(u, v, w),
        };
        service.execute(&[
            op(0, 0, 1, 5),
            op(1, 2, 3, 7),
            op(2, 0, 4, 2),
            op(3, 1, 2, 9),
            op(4, 5, 6, 4),
            op(5, 0, 7, 3),
        ]);
        service.execute(&[TenantOp {
            tenant: TenantId(1),
            op: BatchOp::Cut { id: EdgeId(0) },
        }]);

        let mut buf = Vec::new();
        service.checkpoint_all(&mut buf).unwrap();
        let mut restored = ShardedService::restore_all(&buf[..]).unwrap();
        assert_eq!(restored.num_shards(), service.num_shards());
        assert_eq!(restored.num_tenants(), service.num_tenants());
        assert_eq!(
            restored.total_forest_weight(),
            service.total_forest_weight()
        );
        assert_eq!(restored.stats(), service.stats());
        for t in 0..6 {
            assert_eq!(
                restored.tenant_forest_weight(TenantId(t)),
                service.tenant_forest_weight(TenantId(t)),
                "tenant {t} weight drifted through the checkpoint"
            );
        }
        // The restored router still translates tenant-local ids correctly:
        // the same new op produces the same outcome on both services.
        let probe = [op(3, 3, 4, 6)];
        let a = restored.execute(&probe);
        let b = service.execute(&probe);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(
            restored.total_forest_weight(),
            service.total_forest_weight()
        );
    }

    #[test]
    fn service_checkpoint_refuses_shard_section_shuffles() {
        let tenants: Vec<TenantSpec> = (0..4).map(|t| TenantSpec::new(TenantId(t), 4)).collect();
        let service = ShardedService::new(2, &tenants);
        let mut buf = Vec::new();
        service.checkpoint_all(&mut buf).unwrap();
        // Reassemble with the two shard sections swapped — each section's
        // CRC still passes, but the embedded shard indices expose the swap.
        let mut r = &buf[..];
        let kind = read_header(&mut r).unwrap();
        let (t1, tenants_payload) = read_section(&mut r).unwrap();
        let (t2, shard0) = read_section(&mut r).unwrap();
        let (t3, shard1) = read_section(&mut r).unwrap();
        assert_eq!((t1, t2, t3), (SEC_TENANTS, SEC_SHARD, SEC_SHARD));
        let mut swapped = Vec::new();
        write_header(&mut swapped, kind).unwrap();
        write_section(&mut swapped, SEC_TENANTS, &tenants_payload).unwrap();
        write_section(&mut swapped, SEC_SHARD, &shard1).unwrap();
        write_section(&mut swapped, SEC_SHARD, &shard0).unwrap();
        write_section(&mut swapped, SEC_END, &[]).unwrap();
        assert!(ShardedService::restore_all(&swapped[..]).is_err());
    }
}
