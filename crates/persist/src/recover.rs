//! Crash recovery: newest valid checkpoint + op-log tail replay.
//!
//! The recovery invariant the proptests pin down:
//!
//! > `restore(checkpoint(S))` followed by replaying every **acknowledged**
//! > logged batch after the checkpoint's sequence number reproduces `S`
//! > exactly — same forest edges, same weights, same future behaviour.
//!
//! Replay routes through the engine's normal
//! [`pdmsf_engine::Engine::replay_logged`] → `execute_planned` path, so a
//! recovered engine exercised the same application code as the original.
//! Corruption never degrades silently: a damaged checkpoint refuses to
//! restore, a torn log tail is truncated and **reported**, and a log that
//! cannot reach the engine's expected next sequence number fails recovery
//! with an error instead of shipping a shortened history.

use pdmsf_engine::Engine;
use pdmsf_shard::ShardedService;
use std::io::Read;

use crate::checkpoint::{EngineCheckpointExt, ServiceCheckpointExt};
use crate::format::PersistError;
use crate::oplog::read_log;

/// What one engine's recovery did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The engine's sequence number as restored from the checkpoint.
    pub checkpoint_seq: u64,
    /// Valid records found in the log (including ones at or before the
    /// checkpoint, which are skipped).
    pub log_records: u64,
    /// Records actually replayed (sequence numbers after the checkpoint).
    pub replayed: u64,
    /// The engine's sequence number after replay.
    pub recovered_seq: u64,
    /// Bytes of torn log tail dropped (0 after a clean shutdown). A torn
    /// tail can only hold batches that were never acknowledged — the engine
    /// logs before it applies, and callers are answered after.
    pub dropped_log_bytes: u64,
    /// Byte length of the log's valid prefix — truncate the log file here
    /// before appending new records.
    pub log_valid_len: u64,
}

/// Recover one engine: restore the checkpoint from `checkpoint`, read the
/// op log `log_bytes` (stamped with `expect_stream`), and replay every
/// logged batch the checkpoint does not already cover.
pub fn recover_engine<R: Read>(
    checkpoint: R,
    log_bytes: &[u8],
    expect_stream: u32,
) -> Result<(Engine, RecoveryReport), PersistError> {
    let mut engine = Engine::restore(checkpoint)?;
    let report = replay_into(&mut engine, log_bytes, expect_stream)?;
    Ok((engine, report))
}

/// Recover a sharded service: restore the service checkpoint, then replay
/// each shard's op log (`logs[shard]`, stamped with stream id = shard
/// index). Returns the per-shard reports in shard order.
pub fn recover_service<R: Read>(
    checkpoint: R,
    logs: &[&[u8]],
) -> Result<(ShardedService, Vec<RecoveryReport>), PersistError> {
    let mut service = ShardedService::restore_all(checkpoint)?;
    if logs.len() != service.num_shards() {
        return Err(PersistError::Inconsistent(format!(
            "service has {} shards but {} op logs were supplied",
            service.num_shards(),
            logs.len()
        )));
    }
    let mut reports = Vec::with_capacity(logs.len());
    for (shard, log) in logs.iter().enumerate() {
        let report = replay_into(service.shard_engine_mut(shard), log, shard as u32).map_err(
            |e| match e {
                PersistError::Corrupt(m) => PersistError::Corrupt(format!("shard {shard}: {m}")),
                PersistError::Inconsistent(m) => {
                    PersistError::Inconsistent(format!("shard {shard}: {m}"))
                }
                io => io,
            },
        )?;
        reports.push(report);
    }
    // Replay advanced the shard engines past the checkpointed tenant table;
    // re-derive the tenant edge-id maps from the recovered mirrors and
    // cross-validate: the checkpointed map must be a prefix of the rebuilt
    // one (replay only ever appends allocations).
    let before = service.export_tenants();
    service
        .rebuild_tenant_edge_maps()
        .map_err(PersistError::Inconsistent)?;
    let after = service.export_tenants();
    for (b, a) in before.iter().zip(&after) {
        if a.edge_ids.len() < b.edge_ids.len() || a.edge_ids[..b.edge_ids.len()] != b.edge_ids[..] {
            return Err(PersistError::Inconsistent(format!(
                "tenant {:?}: replayed edge-id map diverged from the checkpointed one",
                b.id
            )));
        }
    }
    Ok((service, reports))
}

/// Replay the log tail into a restored engine.
fn replay_into(
    engine: &mut Engine,
    log_bytes: &[u8],
    expect_stream: u32,
) -> Result<RecoveryReport, PersistError> {
    let log = read_log(log_bytes)?;
    if log.stream_id != expect_stream {
        return Err(PersistError::Inconsistent(format!(
            "op log belongs to stream {} but stream {expect_stream} was expected",
            log.stream_id
        )));
    }
    let checkpoint_seq = engine.applied_seq();
    let mut replayed = 0u64;
    for record in &log.records {
        if record.seq <= checkpoint_seq {
            // The checkpoint already contains this batch's effects.
            continue;
        }
        engine
            .replay_logged(record)
            .map_err(PersistError::Inconsistent)?;
        replayed += 1;
    }
    Ok(RecoveryReport {
        checkpoint_seq,
        log_records: log.records.len() as u64,
        replayed,
        recovered_seq: engine.applied_seq(),
        dropped_log_bytes: log.dropped_bytes,
        log_valid_len: log.valid_len,
    })
}
