//! Fault injection for crash-recovery testing: media that model what a real
//! disk does to you — a process dying mid-write (a torn tail), bytes that
//! rot at rest (bit flips), files that come back shorter than they were
//! written (truncation).
//!
//! The harness centers on [`SharedDisk`]: a cloneable in-memory byte store
//! standing in for the durable medium. A writer (checkpoint stream or
//! [`crate::OpLogWriter`]) writes into one clone while the test keeps
//! another; "crashing" is simply *stopping* — the disk retains whatever had
//! been written, and the injectors below then damage it the way a real
//! crash or rot would before recovery reads it back.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::oplog::LogMedium;

/// A cloneable in-memory durable medium. All clones share one byte store;
/// the bytes survive dropping any writer built over a clone — exactly the
/// property of a disk across a process crash.
#[derive(Clone, Default)]
pub struct SharedDisk {
    store: Arc<Mutex<Vec<u8>>>,
}

impl SharedDisk {
    /// An empty disk.
    pub fn new() -> SharedDisk {
        SharedDisk::default()
    }

    /// A copy of the current contents.
    pub fn snapshot(&self) -> Vec<u8> {
        self.store.lock().unwrap().clone()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.store.lock().unwrap().len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncate to `len` bytes (recovery truncates a torn log tail before
    /// resuming appends).
    pub fn truncate(&self, len: usize) {
        self.store.lock().unwrap().truncate(len);
    }

    /// Flip one bit at `(byte, bit)` — at-rest corruption.
    pub fn flip_bit(&self, byte: usize, bit: u8) {
        self.store.lock().unwrap()[byte] ^= 1 << (bit & 7);
    }
}

impl Write for SharedDisk {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.store.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl LogMedium for SharedDisk {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A medium that persists only the first `survive` bytes ever written
/// through it; everything after silently vanishes. Models a crash at an
/// arbitrary byte offset: the process believed the write succeeded (no
/// error is surfaced — exactly like a page-cache write the machine lost),
/// but the disk only holds the prefix. Recovery must treat the result as a
/// torn tail, never as a valid shorter history.
pub struct TornDisk {
    disk: SharedDisk,
    survive: u64,
    written: u64,
}

impl TornDisk {
    /// A torn medium over `disk` that persists the first `survive` bytes.
    pub fn new(disk: SharedDisk, survive: u64) -> TornDisk {
        TornDisk {
            disk,
            survive,
            written: 0,
        }
    }
}

impl Write for TornDisk {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let landed = (self.survive.saturating_sub(self.written)).min(buf.len() as u64) as usize;
        self.disk.write_all(&buf[..landed])?;
        self.written += buf.len() as u64;
        // Claim full success: the process never learns the tail was lost.
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl LogMedium for TornDisk {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A medium whose writes start **failing** (with an I/O error) after
/// `budget` bytes. Models a full or dying disk — unlike [`TornDisk`], the
/// process *sees* the failure, and the engine's write-ahead discipline must
/// turn it into a refusal to apply the batch rather than a divergence.
pub struct FailingDisk {
    disk: SharedDisk,
    budget: u64,
    written: u64,
}

impl FailingDisk {
    /// A medium over `disk` that accepts `budget` bytes then errors.
    pub fn new(disk: SharedDisk, budget: u64) -> FailingDisk {
        FailingDisk {
            disk,
            budget,
            written: 0,
        }
    }
}

impl Write for FailingDisk {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.written + buf.len() as u64 > self.budget {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected disk failure",
            ));
        }
        self.written += buf.len() as u64;
        self.disk.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl LogMedium for FailingDisk {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_disk_keeps_exactly_the_surviving_prefix() {
        let disk = SharedDisk::new();
        let mut torn = TornDisk::new(disk.clone(), 5);
        torn.write_all(b"abc").unwrap();
        torn.write_all(b"defgh").unwrap();
        torn.write_all(b"ijk").unwrap();
        assert_eq!(disk.snapshot(), b"abcde");
    }

    #[test]
    fn failing_disk_surfaces_the_error() {
        let disk = SharedDisk::new();
        let mut failing = FailingDisk::new(disk.clone(), 4);
        failing.write_all(b"abcd").unwrap();
        assert!(failing.write_all(b"e").is_err());
        assert_eq!(disk.snapshot(), b"abcd");
    }

    #[test]
    fn shared_disk_survives_its_writers() {
        let disk = SharedDisk::new();
        {
            let mut w = disk.clone();
            w.write_all(b"persisted").unwrap();
        }
        assert_eq!(disk.snapshot(), b"persisted");
        disk.flip_bit(0, 1);
        assert_eq!(disk.snapshot()[0], b'p' ^ 2);
        disk.truncate(3);
        assert_eq!(disk.len(), 3);
    }
}
