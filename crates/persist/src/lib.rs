//! # pdmsf-persist
//!
//! Durability for the `pdmsf` serving stack: **checkpoint/restore** of
//! engines and sharded services, a **write-ahead op log**, **crash
//! recovery**, and the **fault-injection** harness that proves the story
//! under torn writes and bit rot.
//!
//! The stack's performance architecture makes durability nearly free: every
//! structure already lives in flat SoA banks (`pdmsf_core::ChunkArenaImage`
//! / `RowBankImage`, the `DynGraph` lanes), so a checkpoint is raw lane
//! dumps behind a small header — no pointer graph to walk, no per-object
//! encoding.
//!
//! ## The format, in one screen
//!
//! * **Checkpoints** ([`EngineCheckpointExt::checkpoint`],
//!   [`ServiceCheckpointExt::checkpoint_all`]): magic `PDMSFCKP`, format
//!   version ([`FORMAT_VERSION`]), a kind byte, then length-prefixed
//!   **sections** each guarded by a CRC-32 over its tag and payload, closed
//!   by an end marker. A service checkpoint holds a tenant-table section
//!   plus one section per shard engine. Truncation and bit flips are
//!   *detected* — restore returns [`PersistError::Corrupt`], never a
//!   plausible-but-wrong structure; states that decode but disagree with
//!   themselves (cross-validation between mirror, structure and tenant
//!   table) are refused as [`PersistError::Inconsistent`].
//! * **Op log** ([`OpLogWriter`], one per engine/shard): magic `PDMSFLOG`,
//!   version, stream id, then one CRC-guarded record per state-mutating
//!   batch, written **before** the batch applies (the engine's
//!   [`pdmsf_engine::OpSink`] hook enforces the order) and fsync-gated by a
//!   [`FlushPolicy`]. A crash mid-append leaves a **torn tail**: recovery
//!   truncates it at the first invalid record and reports the dropped
//!   bytes — by the write-ahead + ack-after-log discipline those bytes can
//!   only hold batches no caller was ever told succeeded.
//! * **Recovery** ([`recover_engine`], [`recover_service`]): restore the
//!   newest valid checkpoint, then replay the log tail through the engine's
//!   normal batch-application path. The invariant — pinned by the
//!   fault-injection proptest in `tests/recovery.rs` — is
//!   `restore(checkpoint(S)) + replay == S`, checked against an
//!   uninterrupted twin by forest weights, component labels and a full
//!   structure `validate()` walk.
//!
//! ```
//! use pdmsf_engine::{Engine, Op};
//! use pdmsf_graph::{VertexId, Weight};
//! use pdmsf_persist::{
//!     recover_engine, EngineCheckpointExt, FlushPolicy, OpLogWriter, SharedDisk,
//! };
//!
//! // A serving engine with a write-ahead op log.
//! let log = SharedDisk::new();
//! let mut engine = Engine::new(8);
//! engine.set_sink(Box::new(
//!     OpLogWriter::create(log.clone(), 0, FlushPolicy::EveryBatch).unwrap(),
//! ));
//! let link = |u: u32, v: u32, w: i64| Op::Link {
//!     u: VertexId(u), v: VertexId(v), weight: Weight::new(w),
//! };
//! engine.execute(&[link(0, 1, 5), link(1, 2, 3)]);
//!
//! // Checkpoint, then keep serving (the log covers the tail).
//! let mut checkpoint = Vec::new();
//! engine.checkpoint(&mut checkpoint).unwrap();
//! engine.execute(&[link(2, 3, 9)]);
//!
//! // Crash. Recover from checkpoint + log: the post-checkpoint batch is
//! // replayed and nothing is lost.
//! let (recovered, report) = recover_engine(&checkpoint[..], &log.snapshot(), 0).unwrap();
//! assert_eq!(report.replayed, 1);
//! assert_eq!(recovered.forest_weight(), engine.forest_weight());
//! ```

pub mod checkpoint;
pub mod crc32;
pub mod faults;
pub mod format;
mod metrics;
pub mod oplog;
pub mod recover;

pub use checkpoint::{EngineCheckpointExt, ServiceCheckpointExt};
pub use crc32::{crc32, Crc32};
pub use faults::{FailingDisk, SharedDisk, TornDisk};
pub use format::{PersistError, FORMAT_VERSION};
pub use oplog::{read_log, FlushPolicy, LogMedium, LogReadReport, OpLogWriter};
pub use recover::{recover_engine, recover_service, RecoveryReport};
