//! The byte-level checkpoint format: little-endian scalar and lane
//! primitives, and the length-prefixed CRC-guarded **section** framing every
//! checkpoint is built from.
//!
//! A checkpoint is `magic ++ version ++ kind ++ section*`, where each
//! section is
//!
//! ```text
//! tag: u32 | len: u64 | payload: [u8; len] | crc32(tag ++ payload): u32
//! ```
//!
//! and the final section is always the empty [`SEC_END`]. The framing makes
//! the two failure modes of at-rest state explicit:
//!
//! * **Truncation** — a payload or trailer that ends early, or a stream that
//!   ends before [`SEC_END`], reads as [`PersistError::Corrupt`]; a prefix of
//!   a checkpoint never restores silently.
//! * **Bit rot** — any flipped bit inside a section fails that section's
//!   CRC; the reader reports *which* section broke.

use std::fmt;
use std::io::{self, Read, Write};

use crate::crc32::Crc32;

/// First bytes of every checkpoint stream.
pub const CKP_MAGIC: [u8; 8] = *b"PDMSFCKP";
/// First bytes of every op-log stream.
pub const LOG_MAGIC: [u8; 8] = *b"PDMSFLOG";
/// Current checkpoint / op-log format version.
pub const FORMAT_VERSION: u32 = 1;

/// Checkpoint kind byte: a single [`pdmsf_engine::Engine`].
pub const KIND_ENGINE: u8 = 0;
/// Checkpoint kind byte: a whole [`pdmsf_shard::ShardedService`].
pub const KIND_SERVICE: u8 = 1;

/// Section tag: one engine's state (meta + mirror + structure image).
pub const SEC_ENGINE: u32 = 0x454E_4731; // "ENG1"
/// Section tag: the service's tenant table + service scalars.
pub const SEC_TENANTS: u32 = 0x544E_5431; // "TNT1"
/// Section tag: one shard's engine blob inside a service checkpoint.
pub const SEC_SHARD: u32 = 0x5348_4431; // "SHD1"
/// Section tag: end-of-checkpoint marker (empty payload).
pub const SEC_END: u32 = 0x454E_4421; // "END!"

/// Everything that can go wrong writing, reading or applying persisted
/// state.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The bytes are not a valid stream: bad magic, unsupported version,
    /// failed CRC, truncated section, unknown tag.
    Corrupt(String),
    /// The bytes decoded fine but describe an inconsistent state (the
    /// structure-level validation of the image importers refused it, or a
    /// log record does not follow from the restored state).
    Inconsistent(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persisted state: {msg}"),
            PersistError::Inconsistent(msg) => write!(f, "inconsistent persisted state: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        // A reader that runs dry mid-structure is truncation, not a
        // transport failure — report it as corruption so callers treat a
        // half-written checkpoint exactly like a checksum miss.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PersistError::Corrupt("stream truncated".to_string())
        } else {
            PersistError::Io(e)
        }
    }
}

/// Refuse to allocate lane buffers beyond this many bytes from a declared
/// length — a corrupt length field must not become an OOM.
const MAX_SANE_LEN: u64 = 1 << 40;

// ---------------------------------------------------------------------------
// Payload encoding: scalars and flat lanes into a Vec<u8>.
// ---------------------------------------------------------------------------

/// Growable payload buffer with little-endian primitive writers.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh empty payload.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed `u8` lane.
    pub fn lane_u8(&mut self, lane: &[u8]) {
        self.u64(lane.len() as u64);
        self.buf.extend_from_slice(lane);
    }

    /// Length-prefixed `u32` lane.
    pub fn lane_u32(&mut self, lane: &[u32]) {
        self.u64(lane.len() as u64);
        for &v in lane {
            self.u32(v);
        }
    }

    /// Length-prefixed `u64` lane.
    pub fn lane_u64(&mut self, lane: &[u64]) {
        self.u64(lane.len() as u64);
        for &v in lane {
            self.u64(v);
        }
    }

    /// Length-prefixed `i64` lane.
    pub fn lane_i64(&mut self, lane: &[i64]) {
        self.u64(lane.len() as u64);
        for &v in lane {
            self.i64(v);
        }
    }
}

// ---------------------------------------------------------------------------
// Payload decoding: a cursor over a section payload.
// ---------------------------------------------------------------------------

/// Cursor over an in-memory payload with checked little-endian readers.
/// Every read is bounds-checked: a payload that runs dry reads as
/// [`PersistError::Corrupt`], never as a panic.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the payload was consumed exactly.
    pub fn finish(&self, what: &str) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{what}: {} trailing bytes after the payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Corrupt(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i128(&mut self) -> Result<i128, PersistError> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn lane_len(&mut self, elem_size: u64) -> Result<usize, PersistError> {
        let n = self.u64()?;
        if n.saturating_mul(elem_size) > MAX_SANE_LEN || n * elem_size > self.remaining() as u64 {
            return Err(PersistError::Corrupt(format!(
                "lane length {n} exceeds the payload"
            )));
        }
        Ok(n as usize)
    }

    pub fn lane_u8(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.lane_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn lane_u32(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.lane_len(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn lane_u64(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.lane_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn lane_i64(&mut self) -> Result<Vec<i64>, PersistError> {
        let n = self.lane_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Section framing.
// ---------------------------------------------------------------------------

/// Write the checkpoint stream header.
pub fn write_header<W: Write>(w: &mut W, kind: u8) -> Result<(), PersistError> {
    w.write_all(&CKP_MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&[kind])?;
    Ok(())
}

/// Read and validate the checkpoint stream header; returns the kind byte.
pub fn read_header<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != CKP_MAGIC {
        return Err(PersistError::Corrupt(
            "bad magic: not a pdmsf checkpoint".to_string(),
        ));
    }
    let mut v = [0u8; 4];
    r.read_exact(&mut v)?;
    let version = u32::from_le_bytes(v);
    if version != FORMAT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "unsupported checkpoint format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    Ok(kind[0])
}

/// Write one framed section: tag, length, payload, CRC over tag + payload.
pub fn write_section<W: Write>(w: &mut W, tag: u32, payload: &[u8]) -> Result<(), PersistError> {
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(payload);
    w.write_all(&crc.finish().to_le_bytes())?;
    Ok(())
}

/// Read one framed section, verifying length sanity and the CRC. Returns
/// `(tag, payload)`.
pub fn read_section<R: Read>(r: &mut R) -> Result<(u32, Vec<u8>), PersistError> {
    let mut head = [0u8; 12];
    r.read_exact(&mut head)?;
    let tag = u32::from_le_bytes(head[0..4].try_into().unwrap());
    let len = u64::from_le_bytes(head[4..12].try_into().unwrap());
    if len > MAX_SANE_LEN {
        return Err(PersistError::Corrupt(format!(
            "section {tag:#x} declares an implausible length {len}"
        )));
    }
    // Read through `take` instead of preallocating `len`: a corrupt length
    // then fails as truncation, not as a giant allocation.
    let mut payload = Vec::with_capacity(len.min(1 << 20) as usize);
    let got = r.take(len).read_to_end(&mut payload)?;
    if got as u64 != len {
        return Err(PersistError::Corrupt(format!(
            "section {tag:#x} truncated: declared {len} bytes, found {got}"
        )));
    }
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let want = u32::from_le_bytes(trailer);
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(&payload);
    let got_crc = crc.finish();
    if got_crc != want {
        return Err(PersistError::Corrupt(format!(
            "section {tag:#x} failed its checksum (stored {want:#010x}, computed {got_crc:#010x})"
        )));
    }
    Ok((tag, payload))
}

/// Read the next section and require its tag.
pub fn expect_section<R: Read>(r: &mut R, want: u32, what: &str) -> Result<Vec<u8>, PersistError> {
    let (tag, payload) = read_section(r)?;
    if tag != want {
        return Err(PersistError::Corrupt(format!(
            "expected the {what} section ({want:#x}), found tag {tag:#x}"
        )));
    }
    Ok(payload)
}

/// The CRC guarding one op-log record: over the sequence number and the
/// record payload (the length field is implied by the payload).
pub fn payload_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&seq.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_round_trip() {
        let mut buf = Vec::new();
        write_header(&mut buf, KIND_ENGINE).unwrap();
        write_section(&mut buf, SEC_ENGINE, b"hello payload").unwrap();
        write_section(&mut buf, SEC_END, b"").unwrap();

        let mut r = &buf[..];
        assert_eq!(read_header(&mut r).unwrap(), KIND_ENGINE);
        let (tag, payload) = read_section(&mut r).unwrap();
        assert_eq!(tag, SEC_ENGINE);
        assert_eq!(payload, b"hello payload");
        let (tag, payload) = read_section(&mut r).unwrap();
        assert_eq!(tag, SEC_END);
        assert!(payload.is_empty());
    }

    #[test]
    fn every_single_bit_flip_in_a_section_is_detected() {
        let mut buf = Vec::new();
        write_section(&mut buf, SEC_ENGINE, b"guarded bytes").unwrap();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                let mut r = &bad[..];
                // Either the CRC catches it, the tag changes (caught by
                // expect_section), or the length changes (truncation) — a
                // flip is never silently absorbed into an identical read.
                match read_section(&mut r) {
                    Err(_) => {}
                    Ok((tag, payload)) => {
                        assert!(
                            tag != SEC_ENGINE || payload != b"guarded bytes",
                            "flip at byte {byte} bit {bit} read back unchanged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let mut buf = Vec::new();
        write_header(&mut buf, KIND_ENGINE).unwrap();
        write_section(&mut buf, SEC_ENGINE, b"some payload bytes").unwrap();
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            let header = read_header(&mut r);
            let ok = header.is_ok() && read_section(&mut r).is_ok();
            assert!(!ok, "truncation at {cut} of {} went unnoticed", buf.len());
        }
    }

    #[test]
    fn bad_magic_and_version_are_refused() {
        let mut buf = Vec::new();
        write_header(&mut buf, KIND_ENGINE).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_header(&mut &bad[..]),
            Err(PersistError::Corrupt(_))
        ));
        let mut future = buf.clone();
        future[8] = 99;
        let err = read_header(&mut &future[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn dec_rejects_overruns_and_trailing_bytes() {
        let mut e = Enc::new();
        e.u32(7);
        e.lane_u32(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.lane_u32().unwrap(), vec![1, 2, 3]);
        d.finish("test payload").unwrap();
        assert!(d.u8().is_err());

        // A lane length pointing past the payload is refused up front.
        let mut e = Enc::new();
        e.u64(1 << 30);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).lane_u32().is_err());
    }
}
