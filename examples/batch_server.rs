//! A miniature MSF serving loop: bursts of mixed update/query traffic —
//! link flaps around per-burst hotspots, duplicate connectivity probes, the
//! odd forest-weight poll — executed through the batch engine.
//!
//! Each burst goes through [`Engine::execute`]: batch planning cancels the
//! flap pairs before they reach the `O(sqrt(n) log n)` update path, queries
//! are deduplicated and answered from one post-update snapshot, and the
//! per-op outcomes come back index-aligned with the burst. Every few bursts
//! the maintained forest is checked against a Kruskal recompute over the
//! engine's mirror graph.
//!
//! Run with `cargo run --release --example batch_server`.

use pdmsf::prelude::*;

fn main() {
    let n = 4_096;
    let stream = BatchStream::generate(&BatchStreamSpec {
        base: GraphSpec::RandomSparse {
            n,
            m: 2 * n,
            seed: 11,
        },
        batches: 40,
        batch_size: 512,
        kind: BatchKind::Bursty {
            query_permille: 550,
            flap_permille: 350,
        },
        seed: 12,
    });
    let (updates, queries) = stream.count_ops();
    println!(
        "serving {} bursts of {} ops over {n} vertices ({updates} updates, {queries} queries)",
        stream.num_batches(),
        stream.batches[0].len(),
    );

    let mut engine = Engine::new(n);
    // Load the base graph as one (untimed) initial batch.
    let base: Vec<BatchOp> = stream
        .base_edges
        .iter()
        .map(|&(u, v, weight)| BatchOp::Link { u, v, weight })
        .collect();
    engine.execute(&base);

    let started = std::time::Instant::now();
    let mut answered_true = 0usize;
    for (i, burst) in stream.batches.iter().enumerate() {
        let result = engine.execute(burst);
        answered_true += result
            .outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Connected { connected: true }))
            .count();
        if (i + 1) % 10 == 0 {
            let s = engine.stats();
            println!(
                "after {:>2} bursts: forest weight = {:>12}, cancelled pairs = {:>4}, \
                 deduped queries = {:>4}, snapshots = {:>2}",
                i + 1,
                engine.forest_weight(),
                s.cancelled_pairs,
                s.deduped_queries,
                s.snapshots
            );
            assert_matches_kruskal(engine.structure(), engine.graph());
        }
    }
    let elapsed = started.elapsed();
    let stats = engine.stats();
    println!(
        "\n{} ops in {:.1}ms — {:.0} ops/s",
        stream.total_ops(),
        elapsed.as_secs_f64() * 1e3,
        stream.total_ops() as f64 / elapsed.as_secs_f64()
    );
    println!(
        "batch leverage: {} updates skipped as cancelled flap pairs, {} of {} queries \
         answered from a duplicate's result, {} snapshots captured",
        2 * stats.cancelled_pairs,
        stats.deduped_queries,
        stats.queries,
        stats.snapshots
    );
    println!("{answered_true} connectivity probes answered true");
}
