//! Road-network maintenance scenario: a grid "city" where road segments fail
//! and are repaired, while the operator keeps a minimum-cost spanning
//! backbone (e.g. for snow clearing or fibre routing) at all times.
//!
//! Compares the paper's structure against the naive linear-scan baseline on
//! the same failure/repair stream and reports wall-clock plus the structural
//! statistics of the chunked forest.
//!
//! Run with `cargo run --release --example road_network`.

use pdmsf::prelude::*;
use std::time::Instant;

fn drive<M: DynamicMsf>(msf: &mut M, stream: &UpdateStream) -> (i128, std::time::Duration) {
    let start = Instant::now();
    stream.replay_with(|mirror, op| match op {
        None => {
            for e in mirror.edges() {
                msf.insert(e);
            }
        }
        Some(UpdateOp::Insert { .. }) => {
            let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
            msf.insert(newest);
        }
        Some(UpdateOp::Delete { id }) => {
            msf.delete(*id);
        }
    });
    (msf.forest_weight(), start.elapsed())
}

fn main() {
    let rows = 40;
    let cols = 40;
    let n = rows * cols;
    // Failure/repair stream: half deletions of random live segments, half new
    // (repaired or temporary) segments.
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::Grid {
            rows,
            cols,
            seed: 7,
        },
        ops: 4_000,
        kind: StreamKind::Mixed {
            insert_permille: 500,
        },
        seed: 99,
    });
    println!(
        "road network: {rows}x{cols} grid, {} vertices, {} initial segments, {} updates",
        n,
        stream.base_edges.len(),
        stream.len()
    );

    let mut kpr = SeqDynamicMsf::new(n);
    let (w_kpr, t_kpr) = drive(&mut kpr, &stream);
    let stats = kpr.forest_stats();
    println!(
        "paper structure  : weight {w_kpr:>12}  time {:>10.2?}  (K={}, chunks={}, ids={}, max n_c={})",
        t_kpr,
        stats.k,
        stats.chunks,
        stats.slots,
        stats.max_nc
    );

    let mut naive = NaiveDynamicMsf::new(n);
    let (w_naive, t_naive) = drive(&mut naive, &stream);
    println!(
        "naive linear scan: weight {w_naive:>12}  time {:>10.2?}",
        t_naive
    );

    let mut recompute = RecomputeMsf::new(n);
    let (w_rec, t_rec) = drive(&mut recompute, &stream);
    println!(
        "recompute Kruskal: weight {w_rec:>12}  time {:>10.2?}",
        t_rec
    );

    assert_eq!(w_kpr, w_naive);
    assert_eq!(w_kpr, w_rec);
    println!("\nall three structures agree on the final backbone ✓");
}
