//! Quickstart: maintain a minimum spanning forest under edge insertions and
//! deletions with the paper's sequential structure.
//!
//! Run with `cargo run --release --example quickstart`.

use pdmsf::prelude::*;

fn main() {
    // A small network of 8 routers; the graph driver owns the edge ids.
    let mut graph = DynGraph::new(8);
    let mut msf = SeqDynamicMsf::new(8);

    let add = |graph: &mut DynGraph, msf: &mut SeqDynamicMsf, u: u32, v: u32, w: i64| {
        let id = graph.insert_edge(VertexId(u), VertexId(v), Weight::new(w));
        let delta = msf.insert(graph.edge_unchecked(id));
        println!("insert ({u},{v}) weight {w:>4}  -> forest change {delta:?}");
        id
    };

    println!("== building the network ==");
    let backbone = add(&mut graph, &mut msf, 0, 1, 10);
    add(&mut graph, &mut msf, 1, 2, 20);
    add(&mut graph, &mut msf, 2, 3, 30);
    add(&mut graph, &mut msf, 3, 0, 40); // closes a cycle: stays out of the MSF
    add(&mut graph, &mut msf, 4, 5, 15);
    add(&mut graph, &mut msf, 5, 6, 25);
    add(&mut graph, &mut msf, 6, 7, 35);
    let bridge = add(&mut graph, &mut msf, 0, 4, 100); // connects the two halves

    println!();
    println!("forest weight      : {}", msf.forest_weight());
    println!("forest edges       : {:?}", msf.forest_edges());
    println!(
        "0 and 7 connected? : {}",
        msf.connected(VertexId(0), VertexId(7))
    );

    println!();
    println!("== a cheaper inter-cluster link appears ==");
    add(&mut graph, &mut msf, 3, 7, 12); // replaces the weight-100 bridge
    println!("forest weight      : {}", msf.forest_weight());
    assert!(!msf.is_forest_edge(bridge));

    println!();
    println!("== the backbone link fails ==");
    graph.delete_edge(backbone);
    let delta = msf.delete(backbone);
    println!("delete backbone    -> forest change {delta:?}");
    println!("forest weight      : {}", msf.forest_weight());
    println!(
        "0 and 1 connected? : {} (reconnected through the replacement edge)",
        msf.connected(VertexId(0), VertexId(1))
    );

    // The maintained forest always matches a from-scratch Kruskal run.
    assert_matches_kruskal(&msf, &graph);
    println!();
    println!("forest verified against Kruskal ✓");
}
