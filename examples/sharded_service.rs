//! A miniature multi-tenant MSF serving deployment: Zipf-skewed tenants
//! sending bursty link-flap traffic, routed through the sharded service —
//! per-tenant order preserved, every touched shard applied as its own
//! concurrent pool job, outcomes reassembled with tenant-local ids.
//!
//! Per burst the demo prints nothing; every few bursts it prints the
//! per-shard summaries (applied / cancelled / rejected, forest weights,
//! snapshots) and cross-checks each shard's forest against a Kruskal
//! recompute of its mirror. At the end it compares against a flat
//! single-engine baseline fed the same traffic merged into one vertex
//! space — same total forest weight, measurably fewer ops/sec.
//!
//! Run with `cargo run --release --example sharded_service`.

use pdmsf::prelude::*;
use pdmsf_bench::{drive_service_flat, MergedTenantEngine};

fn main() {
    let spec = TenantStreamSpec {
        tenants: 12,
        tenant_vertices: 512,
        tenant_edges: 1_024,
        batches: 24,
        batch_size: 512,
        burst: 64,
        zipf_permille: 900,
        kind: BatchKind::Bursty {
            query_permille: 500,
            flap_permille: 300,
        },
        seed: 7,
    };
    let stream = TenantStream::generate(&spec);
    let shards = 4;
    println!(
        "serving {} tenants ({} vertices each) on {shards} shards — {} bursts of {} ops",
        spec.tenants,
        spec.tenant_vertices,
        stream.num_batches(),
        stream.batches[0].len(),
    );
    let counts = stream.ops_per_tenant();
    println!(
        "tenant popularity (zipf {}): head tenant {} ops, tail tenant {} ops",
        spec.zipf_permille,
        counts[0],
        counts[spec.tenants - 1]
    );

    let tenants: Vec<TenantSpec> = (0..spec.tenants)
        // Pin the hottest tenant to shard 0; everyone else places by the
        // stable hash.
        .map(|t| {
            if t == 0 {
                TenantSpec::pinned(TenantId(0), spec.tenant_vertices, 0)
            } else {
                TenantSpec::new(TenantId(t as u32), spec.tenant_vertices)
            }
        })
        .collect();
    let mut service = ShardedService::new(shards, &tenants);
    for t in 0..spec.tenants {
        println!(
            "  tenant t{t:<2} → shard {}",
            service.shard_of(TenantId(t as u32)).unwrap()
        );
    }

    // Load the per-tenant base graphs as one (untimed) batch.
    service.execute(&stream.base_ops());

    let pool_before = pdmsf::pram::pool::snapshot();
    let started = std::time::Instant::now();
    let mut answered_true = 0usize;
    for (i, burst) in stream.batches.iter().enumerate() {
        let result = service.execute(burst);
        answered_true += result
            .outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Connected { connected: true }))
            .count();
        if (i + 1) % 8 == 0 {
            println!("\nafter {:>2} bursts:", i + 1);
            for s in &result.summary.per_shard {
                println!(
                    "  shard {}: {:>4} ops, {:>3} applied, {:>3} cancelled pairs, \
                     {:>2} rejected, {:>3} queries ({:>3} unique), {} snapshots, \
                     forest weight {:>12}",
                    s.shard,
                    s.ops,
                    s.applied_updates,
                    s.cancelled_pairs,
                    s.rejected,
                    s.queries,
                    s.unique_queries,
                    s.snapshots,
                    s.forest_weight,
                );
                assert_matches_kruskal(
                    service.shard_engine(s.shard).structure(),
                    service.shard_engine(s.shard).graph(),
                );
            }
        }
    }
    let elapsed = started.elapsed();
    let pool_delta = pool_before.delta();
    let stats = service.stats();
    println!(
        "\n{} ops in {:.1}ms — {:.0} ops/s over {} shard batches \
         ({} pool jobs, {} pool shards, {} inline runs since start)",
        stream.total_ops(),
        elapsed.as_secs_f64() * 1e3,
        stream.total_ops() as f64 / elapsed.as_secs_f64(),
        stats.shard_batches,
        pool_delta.jobs_run,
        pool_delta.shards_executed,
        pool_delta.inline_runs,
    );
    println!("{answered_true} connectivity probes answered true");

    // The flat baseline: one engine over the merged vertex space, same
    // traffic (the E2 experiment's `MergedTenantEngine` does the vertex and
    // edge-id translation). Same forests, no sharding leverage.
    let total_n = spec.tenants * spec.tenant_vertices;
    let mut flat = MergedTenantEngine::new(spec.tenants, spec.tenant_vertices);
    let (flat_elapsed, _) = drive_service_flat(&mut flat, &stream);
    assert_eq!(service.total_forest_weight(), flat.engine().forest_weight());
    println!(
        "\nflat single-engine baseline (n = {total_n}): {:.0} ops/s — sharded is {:.2}x",
        stream.total_ops() as f64 / flat_elapsed.as_secs_f64(),
        flat_elapsed.as_secs_f64() / elapsed.as_secs_f64(),
    );
}
