//! Sliding-window edge stream: keep the minimum spanning forest of the most
//! recent `W` edges of an endless link-measurement stream (the classic
//! "graph stream with expiry" workload that motivates fully dynamic MSF —
//! every arrival is an insertion, every expiry a deletion).
//!
//! Uses the degree-reduction wrapper so the core structure only ever sees
//! vertices of degree at most 3, exactly as the paper assumes.
//!
//! Run with `cargo run --release --example streaming_edges`.

use pdmsf::prelude::*;

fn main() {
    let n = 512;
    let window = 2 * n;
    let stream = UpdateStream::generate(&UpdateStreamSpec {
        base: GraphSpec::RandomSparse { n, m: n, seed: 3 },
        ops: 20_000,
        kind: StreamKind::SlidingWindow { window },
        seed: 4,
    });

    // The paper's structure behind Frederickson's degree-3 reduction (the
    // wrapper owns the vertex-copy bookkeeping, so the inner structure must
    // start empty).
    let mut msf = DegreeReduced::new(n, SeqDynamicMsf::new(0));
    println!(
        "sliding window over {n} vertices, window = {window} edges, {} stream operations",
        stream.len()
    );

    let mut checkpoints = 0usize;
    let mirror = stream.replay_with(|mirror, op| {
        match op {
            None => {
                for e in mirror.edges() {
                    msf.insert(e);
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                msf.insert(newest);
            }
            Some(UpdateOp::Delete { id }) => {
                msf.delete(*id);
            }
        }
        // Periodically report and verify the window's spanning forest.
        let processed = mirror.edge_id_bound();
        if processed % 4096 == 0 {
            checkpoints += 1;
            let components = n - msf.num_forest_edges();
            println!(
                "after {:>6} arrivals: window edges = {:>5}, forest weight = {:>12}, components = {components}",
                processed,
                mirror.num_edges(),
                msf.forest_weight()
            );
            assert_matches_kruskal(&msf, mirror);
        }
    });

    println!();
    println!(
        "final window: {} live edges, forest weight {}",
        mirror.num_edges(),
        msf.forest_weight()
    );
    assert_matches_kruskal(&msf, &mirror);
    println!("verified {checkpoints} checkpoints against Kruskal ✓");
}
