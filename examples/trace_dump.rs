//! Drive a traced multi-tenant workload through a [`ShardedService`] with a
//! write-ahead op log, capture one batch in the flight recorder, and dump
//! what the tracing layer saw: a compact text timeline plus the Chrome
//! trace-event JSON (load it in Perfetto or `about://tracing`).
//!
//! The example also *checks* the tentpole propagation property: the
//! captured batch must contain spans from all four instrumented layers —
//! shard (routing), engine (plan/apply), pool (range execution) and
//! persist (WAL) — all attributed to one [`obs::trace::TraceId`].
//!
//! ```text
//! cargo run --release --example trace_dump
//! ```

use std::collections::BTreeSet;

use pdmsf::obs;
use pdmsf::persist::{FlushPolicy, OpLogWriter};
use pdmsf::prelude::*;
use pdmsf::shard::TenantSpec;

fn main() {
    let tenants = 8;
    let tenant_vertices = 192;
    let shards = 4;
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|t| TenantSpec::new(TenantId(t), tenant_vertices))
        .collect();
    let mut service = ShardedService::new(shards, &specs);
    service.enable_metrics();
    service.enable_tracing(); // every batch gets a TraceId (sampling = 1)

    // WAL sinks so the persist layer emits wal.append / wal.fsync spans.
    for shard in 0..shards {
        service.shard_engine_mut(shard).set_sink(Box::new(
            OpLogWriter::create(Vec::new(), shard as u32, FlushPolicy::EveryBatch).unwrap(),
        ));
    }

    let stream = TenantStream::generate(&TenantStreamSpec {
        tenants: tenants as usize,
        tenant_vertices,
        tenant_edges: 2 * tenant_vertices,
        batches: 12,
        batch_size: 256,
        burst: 32,
        zipf_permille: 700,
        kind: BatchKind::Bursty {
            query_permille: 500,
            flap_permille: 300,
        },
        seed: 31,
    });
    service.execute(&stream.base_ops()); // warm state

    // Arm the flight recorder for the next batch, then run the stream; the
    // armed batch is pinned regardless of how fast it was.
    obs::trace::capture_next();
    for batch in &stream.batches {
        service.execute(batch);
    }

    let captured = obs::trace::take_captured();
    let cap = captured
        .first()
        .expect("capture_next() pins the armed batch");

    println!("=== flight-recorder capture ===\n");
    println!(
        "trace {} | {:.1} us end-to-end | {} events\n",
        cap.trace,
        cap.total_ns as f64 / 1e3,
        cap.events.len()
    );

    println!("=== text timeline ===\n");
    print!("{}", obs::trace::text_timeline(&cap.events));

    println!("\n=== per-phase totals ===\n");
    for (phase, ns) in obs::trace::phase_durations(&cap.events) {
        println!(
            "{:<18} [{}] {:>10.1} us",
            phase.name(),
            phase.layer(),
            ns as f64 / 1e3
        );
    }

    // The acceptance check: one TraceId, spans from all four layers.
    let ids: BTreeSet<u64> = cap.events.iter().map(|e| e.trace).collect();
    assert_eq!(ids.len(), 1, "a capture holds exactly one trace id");
    let layers: BTreeSet<&str> = cap.events.iter().map(|e| e.phase.layer()).collect();
    for layer in ["shard", "engine", "pool", "persist"] {
        assert!(
            layers.contains(layer),
            "captured batch is missing {layer}-layer spans (got {layers:?})"
        );
    }
    println!(
        "\nall four layers present under trace {}: {layers:?}",
        cap.trace
    );

    println!("\n=== Chrome trace-event JSON (paste into Perfetto) ===\n");
    println!("{}", obs::trace::chrome_trace_json(&cap.events));
}
