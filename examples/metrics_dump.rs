//! Drive a skewed multi-tenant workload through an instrumented
//! [`ShardedService`] with a write-ahead op log and a checkpoint, then dump
//! everything the observability layer saw: the full Prometheus-text
//! exposition of the global registry (all four instrumented layers — pool,
//! engine, shard, persist) and a human-readable per-phase latency table
//! with p50/p95/p99 from the log2-bucketed histograms.
//!
//! ```text
//! cargo run --release --example metrics_dump
//! ```

use pdmsf::obs;
use pdmsf::persist::{FlushPolicy, OpLogWriter, ServiceCheckpointExt};
use pdmsf::prelude::*;
use pdmsf::shard::TenantSpec;

fn main() {
    // A skewed tenant population: 12 tenants on 4 shards, hot tenants
    // picked with Zipf skew so shard load is deliberately imbalanced.
    let tenants = 12;
    let tenant_vertices = 256;
    let shards = 4;
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|t| TenantSpec::new(TenantId(t), tenant_vertices))
        .collect();
    let mut service = ShardedService::new(shards, &specs);
    service.enable_metrics(); // per-shard + per-engine-phase instrumentation

    // Write-ahead op logs make the persist layer show up in the dump too.
    for shard in 0..shards {
        service.shard_engine_mut(shard).set_sink(Box::new(
            OpLogWriter::create(Vec::new(), shard as u32, FlushPolicy::EveryN(8)).unwrap(),
        ));
    }

    let stream = TenantStream::generate(&TenantStreamSpec {
        tenants: tenants as usize,
        tenant_vertices,
        tenant_edges: 2 * tenant_vertices,
        batches: 48,
        batch_size: 384,
        burst: 48,
        zipf_permille: 900,
        kind: BatchKind::Bursty {
            query_permille: 550,
            flap_permille: 350,
        },
        seed: 23,
    });
    service.execute(&stream.base_ops());
    for batch in &stream.batches {
        service.execute(batch);
    }
    let mut checkpoint = Vec::new();
    service.checkpoint_all(&mut checkpoint).unwrap();

    let registry = obs::global();

    println!("=== Prometheus exposition (obs::global().render_text()) ===\n");
    print!("{}", registry.render_text());

    println!("\n=== Phase latency table ===\n");
    println!(
        "{:<34} {:>10} {:>12} {:>12} {:>12}",
        "histogram", "count", "p50_us", "p95_us", "p99_us"
    );
    for (name, label, snap) in registry.histogram_snapshots() {
        if snap.count == 0 {
            continue;
        }
        let name = match label {
            Some((key, value)) => format!("{name}{{{key}=\"{value}\"}}"),
            None => name,
        };
        println!(
            "{:<34} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            name,
            snap.count,
            snap.quantile(0.50) as f64 / 1e3,
            snap.quantile(0.95) as f64 / 1e3,
            snap.quantile(0.99) as f64 / 1e3,
        );
    }

    let stats = service.stats();
    println!(
        "\nservice totals: {} batches, {} ops, {} router rejects, checkpoint {} bytes",
        stats.batches,
        stats.ops,
        stats.router_rejected,
        checkpoint.len()
    );
}
