//! PRAM cost-model demo: drive the parallel structure (Theorem 1.1) over
//! graphs of increasing size and print the quantities the theorem bounds —
//! worst-case parallel depth per update (`O(log n)`), work per update
//! (`O(sqrt n log n)`) and peak processors (`O(sqrt n)`).
//!
//! Run with `cargo run --release --example parallel_depth`.

use pdmsf::prelude::*;

fn main() {
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "n", "K", "worst depth", "mean depth", "mean work", "peak procs"
    );
    for exp in 8..=13 {
        let n = 1usize << exp;
        let stream = UpdateStream::generate(&UpdateStreamSpec {
            base: GraphSpec::RandomSparse {
                n,
                m: 2 * n,
                seed: 42,
            },
            ops: 1_000,
            kind: StreamKind::Mixed {
                insert_permille: 500,
            },
            seed: 43,
        });
        let mut msf = ParDynamicMsf::new(n);
        stream.replay_with(|mirror, op| match op {
            None => {
                for e in mirror.edges() {
                    msf.insert(e);
                }
            }
            Some(UpdateOp::Insert { .. }) => {
                let newest = mirror.edges().max_by_key(|e| e.id).unwrap();
                msf.insert(newest);
            }
            Some(UpdateOp::Delete { id }) => {
                msf.delete(*id);
            }
        });
        let meter = msf.meter();
        println!(
            "{:>8} {:>6} {:>12} {:>12.1} {:>12.1} {:>12}",
            n,
            msf.chunk_parameter(),
            meter.worst_op().depth,
            meter.mean_depth(),
            meter.mean_work(),
            meter.total().peak_processors
        );
    }
    println!();
    println!("depth grows ~logarithmically while work grows ~sqrt(n) log n,");
    println!("matching Theorem 1.1 (see EXPERIMENTS.md, experiments E2-E4).");
}
