//! End-to-end durability walkthrough: build a multi-tenant sharded service
//! with per-shard write-ahead op logs, checkpoint it mid-stream, keep
//! serving, "crash", and recover from checkpoint + log replay — printing
//! the forest weights on both sides so the match is visible.
//!
//! Run with: `cargo run --release --example checkpoint_restore`

use pdmsf::prelude::*;
use pdmsf::shard::TenantRecord;

fn link(t: u32, u: u32, v: u32, w: i64) -> TenantOp {
    TenantOp {
        tenant: TenantId(t),
        op: BatchOp::Link {
            u: VertexId(u),
            v: VertexId(v),
            weight: Weight::new(w),
        },
    }
}

fn cut(t: u32, id: u32) -> TenantOp {
    TenantOp {
        tenant: TenantId(t),
        op: BatchOp::Cut { id: EdgeId(id) },
    }
}

fn print_weights(label: &str, service: &ShardedService, tenants: &[TenantRecord]) {
    print!("{label}: total={}", service.total_forest_weight());
    for t in tenants {
        print!(
            "  t{}={}",
            t.id.0,
            service.tenant_forest_weight(t.id).unwrap_or(0)
        );
    }
    println!();
}

fn main() {
    // A service: 4 tenants of 8 vertices each, spread over 2 shards.
    let specs: Vec<TenantSpec> = (0..4).map(|t| TenantSpec::new(TenantId(t), 8)).collect();
    let mut service = ShardedService::new(2, &specs);

    // One write-ahead op log per shard. `SharedDisk` stands in for a file
    // here so the example is self-contained; `OpLogWriter::create` accepts
    // any `LogMedium` — a real deployment hands it a `std::fs::File`.
    let disks: Vec<SharedDisk> = (0..service.num_shards())
        .map(|_| SharedDisk::new())
        .collect();
    for (shard, disk) in disks.iter().enumerate() {
        service.shard_engine_mut(shard).set_sink(Box::new(
            OpLogWriter::create(disk.clone(), shard as u32, FlushPolicy::EveryBatch).unwrap(),
        ));
    }

    // Serve some traffic, then checkpoint.
    service.execute(&[
        link(0, 0, 1, 5),
        link(0, 1, 2, 3),
        link(1, 0, 1, 8),
        link(2, 2, 3, 1),
        link(3, 4, 5, 9),
    ]);
    let mut checkpoint = Vec::new();
    service.checkpoint_all(&mut checkpoint).unwrap();
    println!(
        "checkpointed {} bytes after the first batch",
        checkpoint.len()
    );

    // Keep serving: these batches exist only in the op logs.
    service.execute(&[link(0, 2, 3, 7), link(1, 1, 2, 2), cut(2, 0)]);
    service.execute(&[link(3, 5, 6, 4), link(2, 0, 1, 6)]);
    let tenants = service.export_tenants();
    print_weights("before crash", &service, &tenants);

    // Crash: the process dies, taking the in-memory service with it. The
    // checkpoint bytes and the log disks are all that survive.
    drop(service);
    let logs: Vec<Vec<u8>> = disks.iter().map(SharedDisk::snapshot).collect();
    let log_refs: Vec<&[u8]> = logs.iter().map(Vec::as_slice).collect();

    // Recover: restore the checkpoint, replay each shard's log tail.
    let (recovered, reports) = recover_service(&checkpoint[..], &log_refs).unwrap();
    for (shard, r) in reports.iter().enumerate() {
        println!(
            "shard {shard}: checkpoint seq {}, replayed {} of {} logged batches -> seq {}",
            r.checkpoint_seq, r.replayed, r.log_records, r.recovered_seq
        );
    }
    print_weights("after recovery", &recovered, &tenants);

    // The recovered service matches the pre-crash one tenant by tenant.
    let recovered_tenants = recovered.export_tenants();
    assert_eq!(tenants, recovered_tenants, "tenant tables diverged");
    println!("recovery reproduced the pre-crash state exactly");
}
